//! Instruction latencies and dependency-chain analysis.
//!
//! The port-binding model in [`crate::pipeline`] gives *throughput* bounds
//! for independent instruction streams. Real kernels also face *latency*
//! bounds when results feed the next operation — FIRESTARTER deliberately
//! avoids such chains (its groups reuse independent registers), which is
//! part of why it sustains 3+ IPC. This module supplies the per-instruction
//! latencies (Haswell numbers per the optimization manual the paper cites
//! as \[2\]/\[3\]) and a critical-path analysis for dependent chains.

use crate::isa::Instr;

/// Result-ready latency of an instruction in core cycles.
pub fn latency_cycles(instr: &Instr) -> u32 {
    match instr.mnemonic {
        // FMA: 5 cycles on Haswell.
        "vfmadd231pd ymm,ymm,ymm" => 5,
        // Memory-source FMA: L1 load-to-use (4) + FMA (5).
        "vfmadd231pd ymm,ymm,[mem]" => 9,
        // Stores produce no register result; latency to a dependent load
        // via forwarding ≈ 5.
        "vmovapd [mem],ymm" => 5,
        "vpsrlq ymm,ymm,imm" => 1,
        "xor r,r" => 0, // zeroing idiom: eliminated at rename
        "add r,imm" => 1,
        "add r,r" => 1,
        "vmulpd ymm,ymm,ymm" => 5,
        "vaddpd ymm,ymm,ymm" => 3,
        // vsqrtpd ymm: ~28 cycles latency on Haswell (unpipelined).
        "vsqrtpd ymm,ymm" => 28,
        _ => 1,
    }
}

/// Cycles per iteration of a kernel when every instruction depends on the
/// previous one (a serial dependency chain).
pub fn chain_cycles_per_iter(kernel: &[Instr]) -> u64 {
    kernel.iter().map(|i| latency_cycles(i) as u64).sum()
}

/// IPC of a fully dependent chain — the latency-bound floor.
pub fn chain_ipc(kernel: &[Instr]) -> f64 {
    let cycles = chain_cycles_per_iter(kernel).max(1);
    kernel.len() as f64 / cycles as f64
}

/// How much independence buys: the ratio between the throughput-bound IPC
/// (independent stream, port model) and the latency-bound IPC (serial
/// chain). FIRESTARTER's generator keeps this ratio high by construction.
pub fn ilp_headroom(kernel: &[Instr]) -> f64 {
    let tp = crate::pipeline::throughput(&hsw_hwspec::MicroArch::haswell_ep(), kernel, false, 1.0);
    tp.ipc_core / chain_ipc(kernel).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::MemLevel;

    #[test]
    fn haswell_latencies_match_the_optimization_manual() {
        assert_eq!(latency_cycles(&Instr::fma_reg()), 5);
        assert_eq!(latency_cycles(&Instr::add_reg()), 3);
        assert_eq!(latency_cycles(&Instr::mul_reg()), 5);
        assert_eq!(latency_cycles(&Instr::sqrt_pd()), 28);
        assert_eq!(latency_cycles(&Instr::xor_reg()), 0);
    }

    #[test]
    fn dependent_fma_chain_is_latency_bound() {
        // A serial FMA chain retires one FMA per 5 cycles (0.2 IPC);
        // independent FMAs reach 2 per cycle. The gap is the ILP headroom
        // out-of-order execution needs to find.
        let kernel = vec![Instr::fma_reg(); 8];
        assert!((chain_ipc(&kernel) - 0.2).abs() < 1e-9);
        let headroom = ilp_headroom(&kernel);
        assert!(headroom > 8.0, "headroom {headroom}");
    }

    #[test]
    fn firestarter_groups_have_high_ilp_headroom() {
        // The generator's design goal: groups of independent operations.
        for level in [MemLevel::Reg, MemLevel::L1] {
            let group = crate::firestarter::group_for_level(level).to_vec();
            let h = ilp_headroom(&group);
            assert!(h > 2.5, "{level:?}: headroom {h:.1}");
        }
    }

    #[test]
    fn sqrt_chain_and_throughput_agree() {
        // The divider is unpipelined: latency (28) and occupancy (16) are
        // close, so dependence barely matters — unlike FMA.
        let kernel = vec![Instr::sqrt_pd(); 4];
        let h = ilp_headroom(&kernel);
        assert!(h < 2.5, "sqrt headroom {h:.2}");
    }

    #[test]
    fn zeroing_xor_is_free() {
        let kernel = vec![Instr::xor_reg(); 16];
        assert_eq!(chain_cycles_per_iter(&kernel), 0);
        assert!(chain_ipc(&kernel) > 1.0);
    }
}
