//! Port-binding throughput model.
//!
//! Computes steady-state instructions-per-cycle for a kernel (a repeating
//! instruction sequence) on a given microarchitecture:
//!
//! 1. **Frontend**: 4 instructions per cycle, one 16-byte fetch window per
//!    cycle when the loop exceeds the µop cache (FIRESTARTER's regime),
//!    retire 4 µops/cycle.
//! 2. **Backend**: greedy fractional assignment of µops to their allowed
//!    ports; the busiest port sets the port-bound cycle count; the total
//!    µop count is bounded by the issue width (8 on Haswell, 6 on SNB).
//! 3. **Memory stalls**: per-access penalties (post-out-of-order-overlap)
//!    for L2/L3/DRAM operands; the L3/DRAM penalties scale with the
//!    core:uncore clock ratio — this couples IPC to the UFS behavior
//!    (paper Table IV).
//! 4. **SMT**: a second thread doubles the execution demand but hides a
//!    third of the stall cycles ([`HT_STALL_HIDE`]), reproducing
//!    FIRESTARTER's 3.1 (HT) vs 2.8 (no HT) IPC (paper Section VIII).

use hsw_hwspec::MicroArch;

use crate::isa::{Instr, MemLevel, PortMap};

/// Residual stall cycles per access after out-of-order overlap, calibrated
/// at a core:uncore ratio of 1.0 against FIRESTARTER's published IPC.
pub const STALL_L1_CYCLES: f64 = 0.05;
pub const STALL_L2_CYCLES: f64 = 0.8;
pub const STALL_L3_CYCLES: f64 = 4.0;
pub const STALL_MEM_CYCLES: f64 = 12.0;

/// Fraction of one thread's memory-stall cycles the sibling hyper-thread
/// can fill with its own work.
pub const HT_STALL_HIDE: f64 = 0.33;

/// What limits the kernel's throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Fetch/decode (4 instructions, one 16 B window per cycle).
    Frontend,
    /// A single execution port (index).
    Port(usize),
    /// Total issue width.
    IssueWidth,
    /// Memory stalls dominate.
    MemoryStalls,
}

/// Throughput-analysis result for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputResult {
    /// Cycles per kernel iteration, per core (both threads combined under
    /// SMT).
    pub cycles_per_iter: f64,
    pub instrs_per_iter: f64,
    pub flops_per_iter: f64,
    /// Instructions per cycle retired by the whole core.
    pub ipc_core: f64,
    /// Instructions per cycle per hardware thread (what a per-thread
    /// counter like `INST_RETIRED.ANY` divided by unhalted cycles shows).
    pub ipc_thread: f64,
    /// Double-precision FLOPs per cycle for the whole core.
    pub flops_per_cycle: f64,
    pub bottleneck: Bottleneck,
}

/// Analyze `kernel` on `arch` at a given core:uncore frequency ratio.
///
/// `smt` — whether two hardware threads run the same kernel on the core.
/// `core_uncore_ratio` — `f_core / f_uncore`; scales the L3/DRAM stall
/// penalties (the uncore serves misses in *its* clock).
pub fn throughput(
    arch: &MicroArch,
    kernel: &[Instr],
    smt: bool,
    core_uncore_ratio: f64,
) -> ThroughputResult {
    assert!(!kernel.is_empty(), "kernel must contain instructions");
    let pm = PortMap::for_arch(arch);

    let instrs = kernel.len() as f64;
    let bytes: f64 = kernel.iter().map(|i| i.bytes as f64).sum();
    let uops: f64 = kernel.iter().map(|i| i.uops.len() as f64).sum();
    let flops: f64 = kernel.iter().map(|i| i.flops as f64).sum();

    // --- Frontend ---
    let total_uops_in_loop = uops; // per iteration; the *loop* is the kernel
    let uses_uop_cache = total_uops_in_loop <= arch.uop_cache_uops as f64;
    let fetch_cycles = if uses_uop_cache {
        // The µop cache delivers 4 *fused* µops (≈ macro instructions) per
        // cycle without fetch-window limits.
        instrs / arch.decode_width as f64
    } else {
        bytes / arch.fetch_window_bytes as f64
    };
    let decode_cycles = instrs / arch.decode_width as f64;
    // Retirement works on *fused* µops: micro-fused load+op and
    // store-address+store-data pairs retire as one slot, so the macro
    // instruction count is the right unit here.
    let retire_cycles = instrs / arch.retire_uops_per_cycle as f64;
    let frontend_cycles = fetch_cycles.max(decode_cycles).max(retire_cycles);

    // --- Backend: greedy fractional port binding ---
    let mut port_load = vec![0.0f64; pm.num_ports];
    for instr in kernel {
        for role in &instr.uops {
            let mask = pm.mask(*role);
            debug_assert!(mask != 0, "role {role:?} unmapped");
            // Least-loaded allowed port takes the µop; unpipelined units
            // (divider/sqrt) occupy their port for multiple cycles.
            let mut best = usize::MAX;
            let mut best_load = f64::INFINITY;
            for (p, load) in port_load.iter().enumerate().take(pm.num_ports) {
                if mask & (1 << p) != 0 && *load < best_load {
                    best = p;
                    best_load = *load;
                }
            }
            port_load[best] += instr.occupancy;
        }
    }
    let (busiest_port, port_cycles) = port_load
        .iter()
        .copied()
        .enumerate()
        .fold((0, 0.0), |acc, (i, l)| if l > acc.1 { (i, l) } else { acc });
    let issue_cycles = uops / arch.execute_uops_per_cycle as f64;

    let exec_cycles = frontend_cycles.max(port_cycles).max(issue_cycles);

    // --- Memory stalls ---
    let ratio = core_uncore_ratio.max(0.1);
    let mut stall_cycles = 0.0;
    for instr in kernel {
        stall_cycles += match instr.level {
            Some(MemLevel::L1) => STALL_L1_CYCLES,
            Some(MemLevel::L2) => STALL_L2_CYCLES,
            Some(MemLevel::L3) => STALL_L3_CYCLES * ratio,
            Some(MemLevel::Mem) => STALL_MEM_CYCLES * ratio,
            Some(MemLevel::Reg) | None => 0.0,
        };
    }

    // --- Combine ---
    let (cycles_per_iter, instrs_retired) = if smt {
        // Two threads: double the execution demand, hide part of the stalls.
        (
            2.0 * exec_cycles + 2.0 * stall_cycles * (1.0 - HT_STALL_HIDE),
            2.0 * instrs,
        )
    } else {
        (exec_cycles + stall_cycles, instrs)
    };

    let ipc_core = instrs_retired / cycles_per_iter;
    let ipc_thread = if smt { ipc_core / 2.0 } else { ipc_core };

    let bottleneck = if stall_cycles > exec_cycles {
        Bottleneck::MemoryStalls
    } else if (port_cycles - exec_cycles).abs() < 1e-12 && port_cycles > frontend_cycles {
        Bottleneck::Port(busiest_port)
    } else if issue_cycles >= port_cycles && issue_cycles > frontend_cycles {
        Bottleneck::IssueWidth
    } else {
        Bottleneck::Frontend
    };

    ThroughputResult {
        cycles_per_iter,
        instrs_per_iter: instrs_retired,
        flops_per_iter: if smt { 2.0 * flops } else { flops },
        ipc_core,
        ipc_thread,
        flops_per_cycle: (if smt { 2.0 * flops } else { flops }) / cycles_per_iter,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::MicroArch;

    fn hsw() -> MicroArch {
        MicroArch::haswell_ep()
    }
    fn snb() -> MicroArch {
        MicroArch::sandy_bridge_ep()
    }

    /// A register-only FMA stream (peak-FLOPS kernel).
    fn fma_kernel() -> Vec<Instr> {
        vec![Instr::fma_reg(); 8]
    }

    #[test]
    fn haswell_peak_is_16_flops_per_cycle() {
        // Table I: FLOPS/cycle (double) = 16 on Haswell.
        let r = throughput(&hsw(), &fma_kernel(), false, 1.0);
        assert!(
            (r.flops_per_cycle - 16.0).abs() < 0.2,
            "flops/cycle = {}",
            r.flops_per_cycle
        );
        assert!(matches!(r.bottleneck, Bottleneck::Port(_)));
    }

    #[test]
    fn sandy_bridge_fma_decomposes_to_8_flops_per_cycle() {
        // Without FMA the same stream binds to the single multiply port:
        // 8 FLOPs per instruction but one instruction per cycle max on p0.
        let r = throughput(&snb(), &fma_kernel(), false, 1.0);
        assert!(r.flops_per_cycle <= 8.0 + 1e-9, "{}", r.flops_per_cycle);
    }

    #[test]
    fn sandy_bridge_add_mul_mix_reaches_8_flops_per_cycle() {
        // Table I: SNB peak = 1 add + 1 mul per cycle = 8 FLOPs.
        let kernel: Vec<Instr> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    Instr::add_reg()
                } else {
                    Instr::mul_reg()
                }
            })
            .collect();
        let r = throughput(&snb(), &kernel, false, 1.0);
        assert!(
            (r.flops_per_cycle - 8.0).abs() < 0.3,
            "{}",
            r.flops_per_cycle
        );
    }

    #[test]
    fn haswell_pure_avx_adds_are_port_limited() {
        // Paper Section II-A: "Two AVX or FMA operations can be issued per
        // cycle, except for AVX additions" — a pure-add stream manages only
        // one per cycle (port 1), i.e. 4 FLOPs/cycle.
        let kernel = vec![Instr::add_reg(); 8];
        let r = throughput(&hsw(), &kernel, false, 1.0);
        assert!(
            (r.flops_per_cycle - 4.0).abs() < 0.2,
            "{}",
            r.flops_per_cycle
        );
        assert_eq!(r.bottleneck, Bottleneck::Port(1));
        // Mixing adds into FMAs restores dual issue.
        let mixed: Vec<Instr> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    Instr::fma_reg()
                } else {
                    Instr::add_reg()
                }
            })
            .collect();
        let r2 = throughput(&hsw(), &mixed, false, 1.0);
        assert!(r2.flops_per_cycle > 10.0, "{}", r2.flops_per_cycle);
    }

    #[test]
    fn smt_improves_stalled_kernels() {
        let kernel = vec![
            Instr::fma_load(MemLevel::L3),
            Instr::fma_reg(),
            Instr::shift_right(),
            Instr::xor_reg(),
        ];
        let single = throughput(&hsw(), &kernel, false, 1.0);
        let smt = throughput(&hsw(), &kernel, true, 1.0);
        assert!(smt.ipc_core > single.ipc_core);
        assert!(smt.ipc_thread < single.ipc_thread);
    }

    #[test]
    fn uncore_ratio_couples_ipc_for_l3_bound_kernels() {
        // Table IV's effect: raising the uncore clock (lower ratio) lifts
        // IPC of kernels with L3/mem traffic.
        let kernel = vec![
            Instr::fma_load(MemLevel::Mem),
            Instr::fma_reg(),
            Instr::shift_right(),
            Instr::add_ptr(),
        ];
        let slow_uncore = throughput(&hsw(), &kernel, true, 2.5 / 2.0);
        let fast_uncore = throughput(&hsw(), &kernel, true, 2.1 / 3.0);
        assert!(fast_uncore.ipc_core > slow_uncore.ipc_core * 1.1);
    }

    #[test]
    fn reg_only_kernels_ignore_uncore_ratio() {
        let kernel = fma_kernel();
        let a = throughput(&hsw(), &kernel, false, 0.5);
        let b = throughput(&hsw(), &kernel, false, 2.0);
        assert_eq!(a.ipc_core, b.ipc_core);
    }

    #[test]
    fn ipc_never_exceeds_decode_width() {
        for smt in [false, true] {
            let kernel = vec![Instr::xor_reg(); 16];
            let r = throughput(&hsw(), &kernel, smt, 1.0);
            assert!(r.ipc_core <= hsw().decode_width as f64 + 1e-9);
        }
    }

    #[test]
    fn empty_stall_model_for_l1_groups() {
        // L1 groups barely stall — FIRESTARTER's bread and butter.
        let kernel = vec![
            Instr::store_avx(MemLevel::L1),
            Instr::fma_load(MemLevel::L1),
            Instr::shift_right(),
            Instr::add_ptr(),
        ];
        let r = throughput(&hsw(), &kernel, false, 1.0);
        assert!(r.ipc_core > 3.0, "ipc = {}", r.ipc_core);
    }
}
