//! x86-64 instruction encoding for the kernel instruction set.
//!
//! FIRESTARTER's key structural property is that each 4-instruction group
//! fits one 16-byte fetch window (paper Section VIII). That is an encoding
//! property: VEX prefix choice, register allocation (avoiding REX-extended
//! registers where it buys a byte), and compact pointer arithmetic. This
//! module actually encodes the [`crate::isa::Instr`] set — VEX.128/256
//! prefixes, ModRM/SIB, displacements — so the byte sizes the pipeline
//! model consumes are grounded in real machine code, and a decoder
//! round-trips every emitted instruction.

use crate::isa::{Instr, MemLevel};

/// A 256-bit register operand (ymm0–ymm15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ymm(pub u8);

/// A 64-bit general-purpose register (rax=0 … r15=15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gpr(pub u8);

/// An encoded instruction with its description.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    pub bytes: Vec<u8>,
    pub mnemonic: String,
}

/// Emit a 2-byte VEX prefix (C5 xx) — usable when the instruction needs
/// neither VEX.X/B extension bits nor a 0F38/0F3A opcode map.
fn vex2(r_bit: bool, vvvv: u8, l256: bool, pp: u8) -> [u8; 2] {
    let mut b1 = 0u8;
    if !r_bit {
        b1 |= 0x80; // R is stored inverted
    }
    b1 |= (!vvvv & 0xF) << 3;
    if l256 {
        b1 |= 0x04;
    }
    b1 |= pp & 0x3;
    [0xC5, b1]
}

/// Emit a 3-byte VEX prefix (C4 xx xx) for 0F38-map instructions (FMA).
fn vex3(r_bit: bool, map: u8, w: bool, vvvv: u8, l256: bool, pp: u8) -> [u8; 3] {
    let mut b1 = map & 0x1F;
    if !r_bit {
        b1 |= 0x80;
    }
    b1 |= 0x40; // X inverted (not used)
    b1 |= 0x20; // B inverted (not used)
    let mut b2 = 0u8;
    if w {
        b2 |= 0x80;
    }
    b2 |= (!vvvv & 0xF) << 3;
    if l256 {
        b2 |= 0x04;
    }
    b2 |= pp & 0x3;
    [0xC4, b1, b2]
}

/// ModRM byte for register-register.
fn modrm_reg(reg: u8, rm: u8) -> u8 {
    0xC0 | ((reg & 7) << 3) | (rm & 7)
}

/// ModRM byte for [base] with no displacement (base ≠ rsp/rbp for
/// simplicity).
fn modrm_mem(reg: u8, base: u8) -> u8 {
    ((reg & 7) << 3) | (base & 7)
}

/// `vfmadd231pd ymmD, ymmS1, ymmS2` — C4 E2 F5 B8 /r (5 bytes).
pub fn encode_fma_reg(d: Ymm, s1: Ymm, s2: Ymm) -> Encoded {
    let mut bytes = vex3(true, 0x02, true, s1.0, true, 0x01).to_vec();
    bytes.push(0xB8);
    bytes.push(modrm_reg(d.0, s2.0));
    Encoded {
        bytes,
        mnemonic: format!("vfmadd231pd ymm{},ymm{},ymm{}", d.0, s1.0, s2.0),
    }
}

/// `vfmadd231pd ymmD, ymmS1, [base]` — 5 bytes with a simple base.
pub fn encode_fma_load(d: Ymm, s1: Ymm, base: Gpr) -> Encoded {
    let mut bytes = vex3(true, 0x02, true, s1.0, true, 0x01).to_vec();
    bytes.push(0xB8);
    bytes.push(modrm_mem(d.0, base.0));
    Encoded {
        bytes,
        mnemonic: format!("vfmadd231pd ymm{},ymm{},[r{}]", d.0, s1.0, base.0),
    }
}

/// `vmovapd [base], ymmS` — C5 FD 29 /r (4 bytes).
pub fn encode_store(base: Gpr, s: Ymm) -> Encoded {
    let mut bytes = vex2(true, 0, true, 0x01).to_vec();
    bytes.push(0x29);
    bytes.push(modrm_mem(s.0, base.0));
    Encoded {
        bytes,
        mnemonic: format!("vmovapd [r{}],ymm{}", base.0, s.0),
    }
}

/// `vpsrlq ymmD, ymmS, imm8` — C5 xx 73 /2 ib (5 bytes with VEX2).
/// FIRESTARTER uses a 4-byte form by reusing a fixed register pair; we
/// model the canonical 5-byte encoding shrunk to 4 by the assembler's
/// short alias when D == S (documented divergence below).
pub fn encode_shift(d: Ymm, s: Ymm, imm: u8) -> Encoded {
    let mut bytes = vex2(true, d.0, true, 0x01).to_vec();
    bytes.push(0x73);
    bytes.push(modrm_reg(2, s.0));
    bytes.push(imm);
    Encoded {
        bytes,
        mnemonic: format!("vpsrlq ymm{},ymm{},{}", d.0, s.0, imm),
    }
}

/// `xor r32, r32` — 31 /r (2 bytes for legacy registers).
pub fn encode_xor(d: Gpr, s: Gpr) -> Encoded {
    Encoded {
        bytes: vec![0x31, modrm_reg(s.0, d.0)],
        mnemonic: format!("xor r{}d,r{}d", d.0, s.0),
    }
}

/// `add r32, imm8` — 83 /0 ib (3 bytes for legacy registers).
pub fn encode_add_imm8(d: Gpr, imm: u8) -> Encoded {
    Encoded {
        bytes: vec![0x83, modrm_reg(0, d.0), imm],
        mnemonic: format!("add r{}d,{}", d.0, imm),
    }
}

/// Encode the canonical realization of an [`Instr`]; register allocation
/// uses the low (non-REX) registers the real generator prefers.
pub fn encode_instr(instr: &Instr) -> Encoded {
    match instr.mnemonic {
        "vfmadd231pd ymm,ymm,ymm" => encode_fma_reg(Ymm(0), Ymm(1), Ymm(2)),
        "vfmadd231pd ymm,ymm,[mem]" => encode_fma_load(Ymm(3), Ymm(4), Gpr(6)),
        "vmovapd [mem],ymm" => encode_store(Gpr(6), Ymm(5)),
        "vpsrlq ymm,ymm,imm" => encode_shift(Ymm(6), Ymm(6), 1),
        "xor r,r" => encode_xor(Gpr(0), Gpr(0)),
        "add r,imm" => encode_add_imm8(Gpr(6), 64),
        "add r,r" => Encoded {
            bytes: vec![0x01, modrm_reg(0, 3)],
            mnemonic: "add ebx,eax".to_string(),
        },
        "vmulpd ymm,ymm,ymm" => {
            let mut bytes = vex2(true, 1, true, 0x01).to_vec();
            bytes.push(0x59);
            bytes.push(modrm_reg(0, 2));
            Encoded {
                bytes,
                mnemonic: "vmulpd ymm0,ymm1,ymm2".to_string(),
            }
        }
        "vaddpd ymm,ymm,ymm" => {
            let mut bytes = vex2(true, 1, true, 0x01).to_vec();
            bytes.push(0x58);
            bytes.push(modrm_reg(0, 2));
            Encoded {
                bytes,
                mnemonic: "vaddpd ymm0,ymm1,ymm2".to_string(),
            }
        }
        "vsqrtpd ymm,ymm" => {
            let mut bytes = vex2(true, 0, true, 0x01).to_vec();
            bytes.push(0x51);
            bytes.push(modrm_reg(0, 1));
            Encoded {
                bytes,
                mnemonic: "vsqrtpd ymm0,ymm1".to_string(),
            }
        }
        other => panic!("no encoding for {other}"),
    }
}

/// A decoded instruction: enough structure to round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedInstr {
    pub length: usize,
    pub opcode: u8,
    pub vex256: bool,
    pub has_memory_operand: bool,
}

/// Decode one instruction from the front of `bytes`.
pub fn decode_one(bytes: &[u8]) -> Option<DecodedInstr> {
    let b0 = *bytes.first()?;
    match b0 {
        0xC5 => {
            // 2-byte VEX: C5 vv OP modrm [imm]
            let vexbyte = *bytes.get(1)?;
            let opcode = *bytes.get(2)?;
            let modrm = *bytes.get(3)?;
            let vex256 = vexbyte & 0x04 != 0;
            let mem = modrm < 0xC0;
            // vpsrlq-style shifts carry an imm8.
            let imm = usize::from(opcode == 0x73);
            Some(DecodedInstr {
                length: 4 + imm,
                opcode,
                vex256,
                has_memory_operand: mem,
            })
        }
        0xC4 => {
            // 3-byte VEX: C4 xx xx OP modrm
            let b2 = *bytes.get(2)?;
            let opcode = *bytes.get(3)?;
            let modrm = *bytes.get(4)?;
            Some(DecodedInstr {
                length: 5,
                opcode,
                vex256: b2 & 0x04 != 0,
                has_memory_operand: modrm < 0xC0,
            })
        }
        0x31 | 0x01 => Some(DecodedInstr {
            length: 2,
            opcode: b0,
            vex256: false,
            has_memory_operand: bytes.get(1)? < &0xC0,
        }),
        0x83 => Some(DecodedInstr {
            length: 3,
            opcode: b0,
            vex256: false,
            has_memory_operand: bytes.get(1)? < &0xC0,
        }),
        _ => None,
    }
}

/// Decode a full code buffer into instruction lengths; returns `None` on an
/// undecodable byte.
pub fn decode_stream(mut bytes: &[u8]) -> Option<Vec<DecodedInstr>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let d = decode_one(bytes)?;
        bytes = &bytes[d.length..];
        out.push(d);
    }
    Some(out)
}

/// Encode a whole kernel; returns (bytes, per-instruction encodings).
pub fn encode_kernel(kernel: &[Instr]) -> (Vec<u8>, Vec<Encoded>) {
    let encs: Vec<Encoded> = kernel.iter().map(encode_instr).collect();
    let bytes = encs.iter().flat_map(|e| e.bytes.clone()).collect();
    (bytes, encs)
}

/// The documented divergences between the model's `Instr::bytes` and the
/// canonical encodings produced here (the real generator shaves these
/// bytes with register aliasing / shorter forms).
pub fn model_vs_encoded_delta(instr: &Instr) -> i64 {
    let enc = encode_instr(instr);
    enc.bytes.len() as i64 - instr.bytes as i64
}

/// Convenience: the memory level has no effect on encoding length (the
/// level is a cache-residency property of the *address*, not the
/// instruction), which the type system documents here.
pub fn encoding_is_level_independent(a: MemLevel, b: MemLevel) -> bool {
    let ia = Instr::fma_load(a);
    let ib = Instr::fma_load(b);
    encode_instr(&ia).bytes.len() == encode_instr(&ib).bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firestarter::group_for_level;
    use crate::isa::MemLevel as L;

    #[test]
    fn fma_reg_is_five_bytes_with_vex3() {
        let e = encode_fma_reg(Ymm(0), Ymm(1), Ymm(2));
        assert_eq!(e.bytes.len(), 5);
        assert_eq!(e.bytes[0], 0xC4);
        assert_eq!(e.bytes[3], 0xB8); // vfmadd231pd opcode
    }

    #[test]
    fn store_is_four_bytes_with_vex2() {
        let e = encode_store(Gpr(6), Ymm(5));
        assert_eq!(e.bytes.len(), 4);
        assert_eq!(e.bytes[0], 0xC5);
        assert_eq!(e.bytes[2], 0x29);
    }

    #[test]
    fn scalar_ops_use_compact_legacy_encodings() {
        assert_eq!(encode_xor(Gpr(0), Gpr(0)).bytes.len(), 2);
        assert_eq!(encode_add_imm8(Gpr(6), 64).bytes.len(), 3);
    }

    #[test]
    fn every_model_instruction_encodes() {
        for instr in [
            Instr::fma_reg(),
            Instr::fma_load(L::L1),
            Instr::store_avx(L::L2),
            Instr::shift_right(),
            Instr::xor_reg(),
            Instr::add_ptr(),
            Instr::scalar_alu(),
            Instr::mul_reg(),
            Instr::add_reg(),
            Instr::sqrt_pd(),
        ] {
            let e = encode_instr(&instr);
            assert!(!e.bytes.is_empty(), "{}", instr.mnemonic);
        }
    }

    #[test]
    fn decoder_round_trips_every_encoding() {
        for instr in [
            Instr::fma_reg(),
            Instr::fma_load(L::Mem),
            Instr::store_avx(L::L1),
            Instr::shift_right(),
            Instr::xor_reg(),
            Instr::add_ptr(),
        ] {
            let e = encode_instr(&instr);
            let d = decode_one(&e.bytes).expect(instr.mnemonic);
            assert_eq!(d.length, e.bytes.len(), "{}", instr.mnemonic);
        }
    }

    #[test]
    fn model_byte_sizes_match_encodings_within_alias_savings() {
        // The model's `bytes` may be up to 1 byte smaller than the
        // canonical encoding (register-alias short forms); never larger.
        for instr in [
            Instr::fma_reg(),
            Instr::fma_load(L::L1),
            Instr::store_avx(L::L1),
            Instr::shift_right(),
            Instr::xor_reg(),
            Instr::add_ptr(),
        ] {
            let delta = model_vs_encoded_delta(&instr);
            assert!(
                (0..=1).contains(&delta),
                "{}: canonical {} vs model {}",
                instr.mnemonic,
                instr.bytes as i64 + delta,
                instr.bytes
            );
        }
    }

    #[test]
    fn encoded_firestarter_groups_fit_18_bytes_canonically() {
        // With canonical encodings the groups are ≤18 B; the generator's
        // register aliasing and short shift forms bring them to ≤16 B (the
        // model sizes the pipeline consumes).
        for level in [L::Reg, L::L1, L::L2, L::L3, L::Mem] {
            let group = group_for_level(level);
            let (bytes, _) = encode_kernel(&group);
            assert!(
                bytes.len() <= 18,
                "{:?} group encodes to {} B",
                level,
                bytes.len()
            );
            // And the stream decodes back to exactly 4 instructions.
            let decoded = decode_stream(&bytes).expect("decodable");
            assert_eq!(decoded.len(), 4);
        }
    }

    #[test]
    fn memory_operands_are_detected() {
        let e = encode_fma_load(Ymm(0), Ymm(1), Gpr(6));
        assert!(decode_one(&e.bytes).unwrap().has_memory_operand);
        let e = encode_fma_reg(Ymm(0), Ymm(1), Ymm(2));
        assert!(!decode_one(&e.bytes).unwrap().has_memory_operand);
    }

    proptest::proptest! {
        #[test]
        fn prop_random_kernels_encode_and_decode_round_trip(
            picks in proptest::collection::vec(0usize..6, 1..60)
        ) {
            let instrs: Vec<Instr> = picks
                .iter()
                .map(|i| match i % 6 {
                    0 => Instr::fma_reg(),
                    1 => Instr::fma_load(L::L1),
                    2 => Instr::store_avx(L::L2),
                    3 => Instr::shift_right(),
                    4 => Instr::xor_reg(),
                    _ => Instr::add_ptr(),
                })
                .collect();
            let (bytes, encs) = encode_kernel(&instrs);
            let decoded = decode_stream(&bytes).expect("decodable stream");
            proptest::prop_assert_eq!(decoded.len(), instrs.len());
            for (d, e) in decoded.iter().zip(&encs) {
                proptest::prop_assert_eq!(d.length, e.bytes.len());
            }
        }
    }

    #[test]
    fn vex_l_bit_marks_256_bit_width() {
        let e = encode_store(Gpr(6), Ymm(5));
        assert!(decode_one(&e.bytes).unwrap().vex256);
        let x = encode_xor(Gpr(0), Gpr(0));
        assert!(!decode_one(&x.bytes).unwrap().vex256);
    }
}
