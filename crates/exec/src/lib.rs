//! # hsw-exec — instruction streams, pipeline throughput, and workloads
//!
//! Three layers:
//!
//! * [`isa`]: a small µop-level instruction representation with
//!   per-generation port maps (Haswell's 8 ports incl. dual FMA, Sandy
//!   Bridge's 6 ports), enough to express the kernels the paper uses.
//! * [`pipeline`]: a port-binding throughput model — frontend width, 16 B
//!   fetch windows, µop-cache capacity, greedy port assignment, memory-stall
//!   accounting with an SMT stall-hiding factor. It validates paper
//!   Table I's FLOPS/cycle, the AVX-add port asymmetry, and Section VIII's
//!   FIRESTARTER IPC (3.1 with Hyper-Threading, 2.8 without).
//! * [`firestarter`] and [`workloads`]: the FIRESTARTER kernel generator
//!   (instruction groups per memory level at the paper's published mix) and
//!   the aggregate workload profiles (idle, sinus, busy-wait, memory,
//!   compute, dgemm, sqrt, FIRESTARTER, LINPACK, mprime) whose activity,
//!   AVX usage, stall fraction and IPC models drive the node simulator.

pub mod encoding;
pub mod firestarter;
pub mod isa;
pub mod kernels;
pub mod latency;
pub mod pipeline;
pub mod workloads;

pub use firestarter::FirestarterKernel;
pub use isa::{Instr, MemLevel, PortMap};
pub use pipeline::{throughput, Bottleneck, ThroughputResult};
pub use workloads::{DutyCycle, IpcModel, WorkloadKind, WorkloadProfile};
