//! Aggregate workload profiles.
//!
//! The node simulator executes workloads at interval granularity: each
//! profile describes the *rates* a workload imposes on a core — switching
//! activity (for power), per-thread IPC (possibly coupled to the
//! core:uncore clock ratio), memory-stall fraction (for UFS/EET), DRAM
//! traffic, AVX-license pressure, and a duty cycle for time-varying loads.
//! The calibration notes on each constructor cite the paper experiment the
//! numbers were fitted against; see DESIGN.md §4.

use hsw_hwspec::calib;

/// How a workload's per-thread IPC responds to the clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IpcModel {
    /// Frequency-ratio independent (compute-bound or latency-bound in the
    /// core).
    Constant(f64),
    /// `ipc = a − b·(f_core/f_uncore)`: workloads with L3/DRAM traffic speed
    /// up (per cycle) when the uncore outpaces the core — the Table IV
    /// effect.
    UncoreCoupled { a: f64, b: f64 },
}

impl IpcModel {
    /// Per-thread IPC at the given clocks (GHz).
    pub fn ipc(&self, f_core_ghz: f64, f_unc_ghz: f64) -> f64 {
        match *self {
            IpcModel::Constant(c) => c,
            IpcModel::UncoreCoupled { a, b } => {
                (a - b * (f_core_ghz / f_unc_ghz.max(0.1))).max(0.05)
            }
        }
    }
}

/// Time modulation of a workload's intensity.
#[derive(Debug, Clone, PartialEq)]
pub enum DutyCycle {
    /// Perfectly constant (FIRESTARTER's design goal).
    Constant,
    /// Sinusoidal activity between `min` and `max` of nominal.
    Sinus { period_s: f64, min: f64, max: f64 },
    /// Repeating phases of (duration s, intensity factor) — LINPACK's
    /// factorization phases, mprime's FFT sizes.
    Phases(Vec<(f64, f64)>),
}

impl DutyCycle {
    /// Intensity factor at absolute time `t_s`.
    pub fn factor_at(&self, t_s: f64) -> f64 {
        match self {
            DutyCycle::Constant => 1.0,
            DutyCycle::Sinus { period_s, min, max } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                min + (max - min) * 0.5 * (1.0 + phase.sin())
            }
            DutyCycle::Phases(phases) => {
                let total: f64 = phases.iter().map(|(d, _)| d).sum();
                if total <= 0.0 {
                    return 1.0;
                }
                let mut t = t_s % total;
                for (d, f) in phases {
                    if t < *d {
                        return *f;
                    }
                    t -= d;
                }
                phases.last().map(|(_, f)| *f).unwrap_or(1.0)
            }
        }
    }

    /// Time-averaged intensity factor over one full cycle — the duty factor
    /// a steady-state (analytic) model should assume. For `Constant` this is
    /// exact; for the periodic shapes it is the long-run mean, which only
    /// matches a finite measurement window when the window covers whole
    /// periods (the surrogate tier's documented duty-transient error).
    pub fn mean_factor(&self) -> f64 {
        match self {
            DutyCycle::Constant => 1.0,
            DutyCycle::Sinus { min, max, .. } => min + (max - min) * 0.5,
            DutyCycle::Phases(phases) => {
                let total: f64 = phases.iter().map(|(d, _)| d).sum();
                if total <= 0.0 {
                    return 1.0;
                }
                phases.iter().map(|(d, f)| d * f).sum::<f64>() / total
            }
        }
    }
}

/// The workloads used across the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    Idle,
    Sinus,
    BusyWait,
    MemoryBound,
    Compute,
    Dgemm,
    Sqrt,
    Firestarter,
    Linpack,
    Mprime,
}

/// Full description of a workload's demands on a core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    pub name: &'static str,
    pub kind: WorkloadKind,
    /// Per-core switching activity with two threads (SMT), *excluding* the
    /// AVX-license power multiplier (which `hsw-power` applies when
    /// `avx_heavy`).
    pub activity_smt: f64,
    /// Activity with a single thread per core.
    pub activity_single: f64,
    /// Whether the instruction stream is dense in 256-bit AVX/FMA — engages
    /// the AVX license and frequencies (paper Section II-F).
    pub avx_heavy: bool,
    /// Fraction of cycles stalled on memory; input to UFS and EET
    /// (paper Sections II-D/II-E).
    pub stall_fraction: f64,
    /// Per-thread IPC model when two threads share the core.
    pub ipc_smt: IpcModel,
    /// Per-thread IPC model for one thread per core.
    pub ipc_single: IpcModel,
    /// DRAM traffic of a fully loaded socket in GB/s (scaled by the number
    /// of busy cores).
    pub dram_gbs_full_socket: f64,
    /// Modeled-RAPL bias of this workload class on Sandy Bridge-EP
    /// (multiplicative, additive W) — the Fig. 2a spread.
    pub snb_rapl_bias: (f64, f64),
    pub duty: DutyCycle,
}

impl WorkloadProfile {
    /// System idle: cores in deep sleep.
    pub fn idle() -> Self {
        WorkloadProfile {
            name: "idle",
            kind: WorkloadKind::Idle,
            activity_smt: 0.0,
            activity_single: 0.0,
            avx_heavy: false,
            stall_fraction: 0.0,
            ipc_smt: IpcModel::Constant(0.0),
            ipc_single: IpcModel::Constant(0.0),
            dram_gbs_full_socket: 0.0,
            snb_rapl_bias: (0.95, 1.0),
            duty: DutyCycle::Constant,
        }
    }

    /// A `while(1)`-style spin loop: trivial scalar work, **no memory
    /// stalls** — the Table III scenario used to find the UFS lower bounds.
    pub fn busy_wait() -> Self {
        WorkloadProfile {
            name: "busy wait",
            kind: WorkloadKind::BusyWait,
            activity_smt: 0.28,
            activity_single: 0.25,
            avx_heavy: false,
            stall_fraction: 0.0,
            ipc_smt: IpcModel::Constant(0.9),
            ipc_single: IpcModel::Constant(1.0),
            dram_gbs_full_socket: 0.0,
            snb_rapl_bias: (1.07, 3.0),
            duty: DutyCycle::Constant,
        }
    }

    /// Sinusoidally modulated compute (the paper's "sinus" benchmark).
    pub fn sinus() -> Self {
        WorkloadProfile {
            name: "sinus",
            kind: WorkloadKind::Sinus,
            activity_smt: 0.55,
            activity_single: 0.50,
            avx_heavy: false,
            stall_fraction: 0.05,
            ipc_smt: IpcModel::Constant(1.4),
            ipc_single: IpcModel::Constant(1.5),
            dram_gbs_full_socket: 2.0,
            snb_rapl_bias: (1.0, 2.0),
            duty: DutyCycle::Sinus {
                period_s: 1.0,
                min: 0.2,
                max: 1.0,
            },
        }
    }

    /// Bandwidth-bound streaming (the "memory" benchmark and the Fig. 7/8
    /// read benchmark).
    pub fn memory_bound() -> Self {
        WorkloadProfile {
            name: "memory",
            kind: WorkloadKind::MemoryBound,
            activity_smt: 0.38,
            activity_single: 0.35,
            avx_heavy: false,
            stall_fraction: 0.85,
            ipc_smt: IpcModel::UncoreCoupled { a: 0.50, b: 0.22 },
            ipc_single: IpcModel::UncoreCoupled { a: 0.55, b: 0.22 },
            dram_gbs_full_socket: 55.0,
            snb_rapl_bias: (0.91, -2.0),
            duty: DutyCycle::Constant,
        }
    }

    /// Scalar compute-bound kernel.
    pub fn compute() -> Self {
        WorkloadProfile {
            name: "compute",
            kind: WorkloadKind::Compute,
            activity_smt: 0.80,
            activity_single: 0.75,
            avx_heavy: false,
            stall_fraction: 0.05,
            ipc_smt: IpcModel::Constant(1.8),
            ipc_single: IpcModel::Constant(2.0),
            dram_gbs_full_socket: 1.0,
            snb_rapl_bias: (1.04, 1.5),
            duty: DutyCycle::Constant,
        }
    }

    /// Blocked matrix multiply (AVX/FMA dense).
    pub fn dgemm() -> Self {
        WorkloadProfile {
            name: "dgemm",
            kind: WorkloadKind::Dgemm,
            activity_smt: 0.78,
            activity_single: 0.75,
            avx_heavy: true,
            stall_fraction: 0.08,
            // FMA-dense streams retire ~2 instructions/cycle (8 FMAs per
            // 4 port-bound cycles — see exec::kernels::dgemm_microkernel).
            ipc_smt: IpcModel::Constant(1.0),
            ipc_single: IpcModel::Constant(2.0),
            dram_gbs_full_socket: 8.0,
            snb_rapl_bias: (0.93, -3.0),
            duty: DutyCycle::Constant,
        }
    }

    /// Square-root-latency-bound kernel (the divider is unpipelined).
    pub fn sqrt() -> Self {
        WorkloadProfile {
            name: "sqrt",
            kind: WorkloadKind::Sqrt,
            activity_smt: 0.55,
            activity_single: 0.50,
            avx_heavy: false,
            stall_fraction: 0.0,
            ipc_smt: IpcModel::Constant(0.5),
            ipc_single: IpcModel::Constant(0.4),
            dram_gbs_full_socket: 0.5,
            snb_rapl_bias: (1.05, 2.5),
            duty: DutyCycle::Constant,
        }
    }

    /// FIRESTARTER 1.2 (paper Section VIII). Activity is the power-model
    /// reference (the maximum-power workload): with HT the effective
    /// activity including the AVX multiplier is 1.0 (0.80 × 1.25); single
    /// threaded it drops with the achieved IPC (2.8 vs 3.1). The SMT IPC
    /// line is the Table IV fit; the single-thread line is the pipeline
    /// model's.
    pub fn firestarter() -> Self {
        WorkloadProfile {
            name: "FIRESTARTER",
            kind: WorkloadKind::Firestarter,
            activity_smt: 0.80,
            activity_single: 0.696,
            avx_heavy: true,
            stall_fraction: 0.30,
            ipc_smt: IpcModel::UncoreCoupled {
                a: calib::FS_IPC_A,
                b: calib::FS_IPC_B,
            },
            ipc_single: IpcModel::UncoreCoupled { a: 3.29, b: 0.50 },
            dram_gbs_full_socket: 31.8,
            snb_rapl_bias: (0.95, -2.0),
            duty: DutyCycle::Constant,
        }
    }

    /// Intel-optimized LINPACK (Table V: problem size 80,000). Denser
    /// per-cycle switching than FIRESTARTER's single-thread mode (hence the
    /// lower TDP-limited frequency, 2.28 GHz) but less DRAM traffic and a
    /// phase-structured duty cycle (factor panels vs. update panels).
    pub fn linpack() -> Self {
        WorkloadProfile {
            name: "LINPACK",
            kind: WorkloadKind::Linpack,
            activity_smt: 0.79,
            activity_single: 0.80,
            avx_heavy: true,
            stall_fraction: 0.12,
            ipc_smt: IpcModel::Constant(1.3),
            ipc_single: IpcModel::Constant(2.6),
            dram_gbs_full_socket: 21.8,
            snb_rapl_bias: (0.90, -5.0),
            duty: DutyCycle::Phases(vec![(8.0, 1.0), (2.0, 0.80), (6.0, 0.97), (1.5, 0.70)]),
        }
    }

    /// mprime 28.5 torture test (Table V): FFT-based, moderate per-cycle
    /// power (hence frequencies *above* nominal under turbo) and the least
    /// constant consumption of the three stress tests.
    pub fn mprime() -> Self {
        WorkloadProfile {
            name: "mprime",
            kind: WorkloadKind::Mprime,
            activity_smt: 0.64,
            activity_single: 0.62,
            avx_heavy: true,
            stall_fraction: 0.18,
            ipc_smt: IpcModel::Constant(1.0),
            ipc_single: IpcModel::Constant(1.9),
            dram_gbs_full_socket: 30.0,
            snb_rapl_bias: (0.97, -1.0),
            duty: DutyCycle::Phases(vec![
                (3.0, 1.0),
                (1.5, 0.92),
                (2.0, 0.99),
                (1.2, 0.88),
                (2.5, 0.96),
            ]),
        }
    }

    /// Per-thread IPC at the given clocks.
    pub fn ipc(&self, smt: bool, f_core_ghz: f64, f_unc_ghz: f64) -> f64 {
        if smt {
            self.ipc_smt.ipc(f_core_ghz, f_unc_ghz)
        } else {
            self.ipc_single.ipc(f_core_ghz, f_unc_ghz)
        }
    }

    /// Per-core activity (before the AVX power multiplier).
    pub fn activity(&self, smt: bool) -> f64 {
        if smt {
            self.activity_smt
        } else {
            self.activity_single
        }
    }

    /// The micro-benchmarks of the Figure 2 RAPL-validation experiment
    /// (paper Section IV: idle, sinus, busy wait, memory, compute, dgemm,
    /// sqrt).
    pub fn fig2_benchmarks() -> Vec<WorkloadProfile> {
        vec![
            Self::idle(),
            Self::sinus(),
            Self::busy_wait(),
            Self::memory_bound(),
            Self::compute(),
            Self::dgemm(),
            Self::sqrt(),
        ]
    }

    /// The stress tests of Table V.
    pub fn table5_benchmarks() -> Vec<WorkloadProfile> {
        vec![Self::firestarter(), Self::linpack(), Self::mprime()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn firestarter_smt_ipc_matches_table4_fit() {
        let fs = WorkloadProfile::firestarter();
        // Table IV medians: per-thread GIPS / core GHz.
        let cases = [(2.31, 2.34, 3.56 / 2.31), (2.09, 3.00, 3.51 / 2.09)];
        for (fc, fu, ipc) in cases {
            let got = fs.ipc(true, fc, fu);
            assert!((got - ipc).abs() < 0.03, "({fc},{fu}): {got} vs {ipc}");
        }
    }

    #[test]
    fn firestarter_is_the_densest_workload() {
        // Its design goal: maximum power (paper Section VIII). Compare the
        // effective activity (with the AVX multiplier) across stress tests.
        let avx_mult = 1.25;
        let eff = |p: &WorkloadProfile, smt: bool| {
            p.activity(smt) * if p.avx_heavy { avx_mult } else { 1.0 }
        };
        let fs = WorkloadProfile::firestarter();
        for other in [
            WorkloadProfile::linpack(),
            WorkloadProfile::mprime(),
            WorkloadProfile::compute(),
            WorkloadProfile::dgemm(),
        ] {
            assert!(
                eff(&fs, true) >= eff(&other, true),
                "{} denser than FIRESTARTER",
                other.name
            );
        }
        assert!((eff(&fs, true) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_wait_has_no_memory_stalls() {
        // Table III requires a no-stall workload to expose the UFS floor.
        assert_eq!(WorkloadProfile::busy_wait().stall_fraction, 0.0);
        assert_eq!(WorkloadProfile::busy_wait().dram_gbs_full_socket, 0.0);
    }

    #[test]
    fn memory_bound_is_stall_dominated() {
        let m = WorkloadProfile::memory_bound();
        assert!(m.stall_fraction > hsw_hwspec::calib::UFS_STALL_THRESHOLD);
    }

    #[test]
    fn stress_tests_are_avx_heavy_micro_benchmarks_vary() {
        for p in WorkloadProfile::table5_benchmarks() {
            assert!(p.avx_heavy, "{}", p.name);
        }
        assert!(!WorkloadProfile::busy_wait().avx_heavy);
        assert!(WorkloadProfile::dgemm().avx_heavy);
    }

    #[test]
    fn firestarter_duty_is_constant_stress_tests_vary() {
        assert_eq!(WorkloadProfile::firestarter().duty, DutyCycle::Constant);
        assert_ne!(WorkloadProfile::linpack().duty, DutyCycle::Constant);
        assert_ne!(WorkloadProfile::mprime().duty, DutyCycle::Constant);
    }

    #[test]
    fn sinus_duty_oscillates_with_one_second_period() {
        let d = WorkloadProfile::sinus().duty;
        let quarter = d.factor_at(0.25);
        let three_quarter = d.factor_at(0.75);
        assert!(quarter > 0.9, "peak {quarter}");
        assert!(three_quarter < 0.3, "trough {three_quarter}");
        assert!((d.factor_at(0.25) - d.factor_at(1.25)).abs() < 1e-9);
    }

    #[test]
    fn mean_factor_matches_the_time_average() {
        // Closed forms against a fine numerical average over whole periods.
        for d in [
            DutyCycle::Constant,
            WorkloadProfile::sinus().duty,
            WorkloadProfile::linpack().duty,
            WorkloadProfile::mprime().duty,
        ] {
            let period = match &d {
                DutyCycle::Constant => 1.0,
                DutyCycle::Sinus { period_s, .. } => *period_s,
                DutyCycle::Phases(p) => p.iter().map(|(s, _)| s).sum(),
            };
            let steps = 100_000;
            let num: f64 = (0..steps)
                .map(|i| d.factor_at((i as f64 + 0.5) / steps as f64 * period))
                .sum::<f64>()
                / steps as f64;
            assert!(
                (d.mean_factor() - num).abs() < 1e-3,
                "{d:?}: closed {} vs numeric {num}",
                d.mean_factor()
            );
        }
        assert_eq!(DutyCycle::Phases(vec![]).mean_factor(), 1.0);
    }

    #[test]
    fn fig2_has_seven_benchmarks() {
        let names: Vec<_> = WorkloadProfile::fig2_benchmarks()
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "idle",
                "sinus",
                "busy wait",
                "memory",
                "compute",
                "dgemm",
                "sqrt"
            ]
        );
    }

    #[test]
    fn snb_biases_spread_across_workloads() {
        // Figure 2a's point: the modeled RAPL is workload dependent. There
        // must be both over- and under-estimating classes.
        let benches = WorkloadProfile::fig2_benchmarks();
        assert!(benches.iter().any(|p| p.snb_rapl_bias.0 > 1.02));
        assert!(benches.iter().any(|p| p.snb_rapl_bias.0 < 0.92));
    }

    proptest! {
        #[test]
        fn prop_ipc_positive_and_bounded(fc in 1.2f64..3.3, fu in 1.2f64..3.0) {
            for p in WorkloadProfile::fig2_benchmarks()
                .into_iter()
                .chain(WorkloadProfile::table5_benchmarks())
            {
                for smt in [false, true] {
                    let ipc = p.ipc(smt, fc, fu);
                    prop_assert!((0.0..=4.0).contains(&ipc), "{}: {}", p.name, ipc);
                }
            }
        }

        #[test]
        fn prop_duty_factor_in_unit_range(t in 0.0f64..1000.0) {
            for p in [
                WorkloadProfile::sinus(),
                WorkloadProfile::linpack(),
                WorkloadProfile::mprime(),
            ] {
                let f = p.duty.factor_at(t);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&f), "{}: {}", p.name, f);
            }
        }
    }
}
