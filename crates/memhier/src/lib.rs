//! # hsw-memhier — ring interconnect, caches, and memory bandwidth
//!
//! Three layers, bottom-up:
//!
//! * [`cache`]: a functional set-associative cache simulator (LRU) and a
//!   three-level hierarchy used for microbenchmark-scale experiments and for
//!   validating working-set classification.
//! * [`ring`]: a message-level simulator of the partitioned ring
//!   interconnect (paper Figure 1) with the buffered inter-partition
//!   queues — the structural ground truth the analytic models are checked
//!   against.
//! * [`latency`]: load-to-use latencies per memory level as a function of
//!   core and uncore frequency and the ring topology (paper Figure 1).
//! * [`bandwidth`]: the analytic read-bandwidth model behind paper
//!   Figures 7 and 8 — per-generation core-side and uncore-side service
//!   terms that reproduce who scales with what: Haswell's L3 follows the
//!   core clock and flattens, its DRAM saturates at 8 cores and becomes
//!   core-frequency independent, Sandy Bridge's DRAM tracks the core clock
//!   because the uncore is core-coupled, Westmere's fixed uncore decouples
//!   both.
//!
//! ## Snapshot coverage
//!
//! The node model consumes only this crate's *analytic* surface
//! ([`dram_read_bandwidth_gbs`] and friends), which is stateless — so
//! `hsw-node`'s warm-start snapshots need nothing from here. The structural
//! simulators ([`cache`], [`ring`]) hold state but are experiment-local
//! scratch, never part of a `Node`.

pub mod bandwidth;
pub mod cache;
pub mod coherence;
pub mod latency;
pub mod prefetch;
pub mod ring;

pub use bandwidth::{
    dram_read_bandwidth_gbs, dram_read_bandwidth_gbs_ext, l3_read_bandwidth_gbs, BwParams,
    MemoryLevel,
};
pub use cache::{AccessResult, Cache, CacheHierarchy};
pub use coherence::{Access, CoherenceDirectory, CoherenceResult, Mesi, Source};
pub use latency::{dram_latency_ns, l3_latency_ns};
pub use prefetch::{PrefetchedHierarchy, StreamPrefetcher};
pub use ring::{Delivery, RingNetwork, Stop};
