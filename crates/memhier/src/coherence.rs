//! MESI cache-coherence model for core-to-core line transfers.
//!
//! The paper notes that "the uncore frequency has a significant impact on
//! on-die cache-line transfer rates" (Section II-D) — those transfers are
//! coherence actions resolved through the ring and the L3's core-valid
//! bits. This module implements the MESI state machine per cache line with
//! a transfer-cost model in ring (uncore) cycles, following the
//! methodology of the group's earlier coherence study (\[28\]: *Memory
//! Performance and Cache Coherency Effects on an Intel Nehalem
//! Multiprocessor System*).

use std::collections::BTreeMap;

use hsw_hwspec::DieLayout;

use crate::ring::{RingNetwork, Stop};

/// MESI states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

/// What kind of access a core performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// Where a request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Own cache (hit, no coherence action).
    Local,
    /// Forwarded from another core's cache (dirty or clean-exclusive line).
    CacheToCache { owner: usize },
    /// L3 (line shared or unowned but present).
    L3,
    /// Memory (line absent everywhere).
    Dram,
}

/// Per-line directory entry: MESI state in each core's private cache.
#[derive(Debug, Clone)]
struct LineState {
    states: Vec<Mesi>,
}

/// The coherence directory of one socket (L3 core-valid bits).
#[derive(Debug)]
pub struct CoherenceDirectory {
    cores: usize,
    lines: BTreeMap<u64, LineState>,
    ring: RingNetwork,
    die: DieLayout,
}

/// Outcome of one access: the serving source plus the coherence cost in
/// uncore cycles (ring hops + snoop/forward latency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceResult {
    pub source: Source,
    pub uncore_cycles: u64,
}

/// Fixed L3/directory lookup cost in uncore cycles.
const DIR_LOOKUP_CYCLES: u64 = 10;
/// Extra cycles for a cache-to-cache forward (snoop + data return).
const FORWARD_CYCLES: u64 = 14;
/// DRAM access cost expressed in uncore cycles at 3 GHz (~65 ns).
const DRAM_CYCLES: u64 = 195;

impl CoherenceDirectory {
    pub fn new(die: DieLayout) -> Self {
        CoherenceDirectory {
            cores: die.total_cores(),
            lines: BTreeMap::new(),
            ring: RingNetwork::new(&die),
            die,
        }
    }

    fn stop_of(&self, core: usize) -> Stop {
        let partition = self.die.partition_of_core(core);
        let base: usize = self
            .die
            .partitions
            .iter()
            .take(partition)
            .map(|p| p.cores)
            .sum();
        Stop {
            partition,
            index: core - base,
        }
    }

    /// Ring cost between two cores' stops (uncongested).
    fn hop_cycles(&self, a: usize, b: usize) -> u64 {
        self.ring.min_latency(self.stop_of(a), self.stop_of(b))
    }

    /// The MESI state of `line` in `core`'s cache.
    pub fn state(&self, core: usize, line: u64) -> Mesi {
        self.lines
            .get(&line)
            .map(|l| l.states[core])
            .unwrap_or(Mesi::Invalid)
    }

    /// Perform an access and update the directory.
    pub fn access(&mut self, core: usize, line: u64, access: Access) -> CoherenceResult {
        assert!(core < self.cores);
        let cores = self.cores;
        let entry = self.lines.entry(line).or_insert_with(|| LineState {
            states: vec![Mesi::Invalid; cores],
        });
        let my_state = entry.states[core];

        // Hits that need no bus action.
        match (access, my_state) {
            (Access::Read, Mesi::Modified | Mesi::Exclusive | Mesi::Shared)
            | (Access::Write, Mesi::Modified) => {
                return CoherenceResult {
                    source: Source::Local,
                    uncore_cycles: 0,
                };
            }
            (Access::Write, Mesi::Exclusive) => {
                // Silent E→M upgrade.
                entry.states[core] = Mesi::Modified;
                return CoherenceResult {
                    source: Source::Local,
                    uncore_cycles: 0,
                };
            }
            _ => {}
        }

        // Find an owner (M or E) or sharers.
        let owner = entry
            .states
            .iter()
            .position(|s| matches!(s, Mesi::Modified | Mesi::Exclusive));
        let any_shared = entry.states.contains(&Mesi::Shared);

        let (source, extra) = match owner {
            Some(o) if o != core => (
                Source::CacheToCache { owner: o },
                self.hop_cycles(core, o) + FORWARD_CYCLES,
            ),
            _ if any_shared => (Source::L3, 0),
            _ => (Source::Dram, DRAM_CYCLES),
        };

        // State updates.
        let entry = self.lines.get_mut(&line).expect("entry exists");
        match access {
            Access::Read => {
                if let Some(o) = owner.filter(|o| *o != core) {
                    // Owner is demoted to Shared; line now shared.
                    entry.states[o] = Mesi::Shared;
                    entry.states[core] = Mesi::Shared;
                } else if any_shared {
                    entry.states[core] = Mesi::Shared;
                } else {
                    entry.states[core] = Mesi::Exclusive;
                }
            }
            Access::Write => {
                for s in entry.states.iter_mut() {
                    *s = Mesi::Invalid;
                }
                entry.states[core] = Mesi::Modified;
            }
        }

        CoherenceResult {
            source,
            uncore_cycles: DIR_LOOKUP_CYCLES + extra,
        }
    }

    /// Core-to-core transfer latency of a dirty line in ns at the given
    /// uncore frequency — the quantity the paper says UFS moves.
    pub fn dirty_transfer_ns(&mut self, from: usize, to: usize, f_unc_ghz: f64) -> f64 {
        // Install dirty in `from`, then read from `to`.
        let line = 0xDEAD_0000u64 | ((from as u64) << 8) | to as u64;
        self.access(from, line, Access::Write);
        let r = self.access(to, line, Access::Read);
        debug_assert!(matches!(r.source, Source::CacheToCache { .. }));
        r.uncore_cycles as f64 / f_unc_ghz.max(0.1)
    }

    /// Exactly-one-owner invariant (at most one M/E copy; M excludes any
    /// other valid copy).
    pub fn check_invariants(&self) -> bool {
        for l in self.lines.values() {
            let m = l.states.iter().filter(|s| **s == Mesi::Modified).count();
            let e = l.states.iter().filter(|s| **s == Mesi::Exclusive).count();
            let shared = l.states.iter().filter(|s| **s == Mesi::Shared).count();
            if m + e > 1 {
                return false;
            }
            if m == 1 && shared > 0 {
                return false;
            }
            if e == 1 && shared > 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::DieLayout;
    use proptest::prelude::*;

    #[test]
    fn directory_lines_iterate_in_ascending_address_order() {
        // Determinism regression: the line directory is a BTreeMap, so any
        // walk over tracked lines is in address order, not hash order.
        let mut d = dir();
        for addr in [0x4C0u64, 0x40, 0x200, 0x100] {
            d.access(0, addr, Access::Read);
        }
        let addrs: Vec<u64> = d.lines.keys().copied().collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
        assert_eq!(addrs.len(), 4);
    }

    fn dir() -> CoherenceDirectory {
        CoherenceDirectory::new(DieLayout::die12())
    }

    #[test]
    fn cold_read_comes_from_dram_then_hits_locally() {
        let mut d = dir();
        let r = d.access(0, 0x40, Access::Read);
        assert_eq!(r.source, Source::Dram);
        assert_eq!(d.state(0, 0x40), Mesi::Exclusive);
        let r2 = d.access(0, 0x40, Access::Read);
        assert_eq!(r2.source, Source::Local);
        assert_eq!(r2.uncore_cycles, 0);
    }

    #[test]
    fn dirty_line_forwards_cache_to_cache() {
        let mut d = dir();
        d.access(3, 0x80, Access::Write);
        assert_eq!(d.state(3, 0x80), Mesi::Modified);
        let r = d.access(7, 0x80, Access::Read);
        assert_eq!(r.source, Source::CacheToCache { owner: 3 });
        assert_eq!(d.state(3, 0x80), Mesi::Shared);
        assert_eq!(d.state(7, 0x80), Mesi::Shared);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = dir();
        for c in 0..4 {
            d.access(c, 0xC0, Access::Read);
        }
        d.access(5, 0xC0, Access::Write);
        for c in 0..4 {
            assert_eq!(d.state(c, 0xC0), Mesi::Invalid, "core {c}");
        }
        assert_eq!(d.state(5, 0xC0), Mesi::Modified);
    }

    #[test]
    fn silent_exclusive_to_modified_upgrade() {
        let mut d = dir();
        d.access(2, 0x100, Access::Read);
        assert_eq!(d.state(2, 0x100), Mesi::Exclusive);
        let r = d.access(2, 0x100, Access::Write);
        assert_eq!(r.source, Source::Local);
        assert_eq!(d.state(2, 0x100), Mesi::Modified);
    }

    #[test]
    fn cross_partition_transfers_cost_more() {
        let mut d = dir();
        // Cores 0 and 7 share partition 0; core 8 lives in partition 1.
        d.access(0, 0x140, Access::Write);
        let local = d.access(7, 0x140, Access::Read).uncore_cycles;
        d.access(0, 0x180, Access::Write);
        let cross = d.access(8, 0x180, Access::Read).uncore_cycles;
        assert!(
            cross > local,
            "cross-partition {cross} must exceed in-partition {local}"
        );
    }

    #[test]
    fn transfer_latency_scales_with_uncore_frequency() {
        // The paper's Section II-D claim: UFS moves cache-line transfer
        // rates. Halving the uncore clock doubles the transfer time.
        let mut d = dir();
        let fast = d.dirty_transfer_ns(0, 5, 3.0);
        let mut d = dir();
        let slow = d.dirty_transfer_ns(0, 5, 1.5);
        assert!((slow / fast - 2.0).abs() < 1e-9, "{slow} vs {fast}");
    }

    proptest! {
        #[test]
        fn prop_mesi_invariants_hold_under_random_traffic(
            ops in proptest::collection::vec(
                (0usize..12, 0u64..16, any::<bool>()),
                1..300,
            )
        ) {
            let mut d = dir();
            for (core, line, write) in ops {
                let access = if write { Access::Write } else { Access::Read };
                d.access(core, line * 64, access);
                prop_assert!(d.check_invariants());
            }
        }

        #[test]
        fn prop_write_makes_writer_modified(
            setup in proptest::collection::vec((0usize..12, any::<bool>()), 0..20),
            writer in 0usize..12,
        ) {
            let mut d = dir();
            for (core, write) in setup {
                d.access(core, 0x40, if write { Access::Write } else { Access::Read });
            }
            d.access(writer, 0x40, Access::Write);
            prop_assert_eq!(d.state(writer, 0x40), Mesi::Modified);
            for c in (0..12).filter(|c| *c != writer) {
                prop_assert_eq!(d.state(c, 0x40), Mesi::Invalid);
            }
        }

        #[test]
        fn prop_reads_never_invalidate_other_copies(
            readers in proptest::collection::vec(0usize..12, 1..24),
        ) {
            let mut d = dir();
            let mut valid = std::collections::BTreeSet::new();
            for r in readers {
                d.access(r, 0x200, Access::Read);
                valid.insert(r);
                for v in &valid {
                    prop_assert_ne!(d.state(*v, 0x200), Mesi::Invalid);
                }
            }
        }
    }
}
