//! Functional set-associative cache simulator with LRU replacement, plus a
//! three-level hierarchy matching the Xeon-EP cache geometry.
//!
//! This is the microbenchmark-scale companion of the analytic bandwidth
//! model: experiments that reason about *which level a working set lives in*
//! (the paper's 17 MB L3 set vs. 350 MB DRAM set, FIRESTARTER's per-level
//! instruction groups) validate their classification against this model.

use hsw_hwspec::CacheSpec;

/// Result of a hierarchy access: which level served the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    L1Hit,
    L2Hit,
    L3Hit,
    DramAccess,
}

impl AccessResult {
    pub fn level_name(self) -> &'static str {
        match self {
            AccessResult::L1Hit => "L1",
            AccessResult::L2Hit => "L2",
            AccessResult::L3Hit => "L3",
            AccessResult::DramAccess => "DRAM",
        }
    }
}

/// One set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    /// tags[set * ways + way] = Some(tag); parallel `lru` holds recency
    /// (higher = more recent).
    tags: Vec<Option<u64>>,
    lru: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways, "capacity too small for associativity");
        // Sets need not be a power of two: ring L3s hash lines across
        // slices, so e.g. a 30 MiB 20-way L3 has 24576 sets. We index with a
        // modulo, matching the hash's uniform distribution.
        let sets = lines / ways;
        Cache {
            sets,
            ways,
            line_bytes,
            tags: vec![None; sets * ways],
            lru: vec![0; sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes as u64;
        ((line % self.sets as u64) as usize, line / self.sets as u64)
    }

    /// Access `addr`; returns true on hit. On miss the line is filled,
    /// evicting the LRU way. A single pass over the set serves both the tag
    /// match and the victim choice (first empty way, else LRU) — this is
    /// the hot loop of every streamed working-set classification.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let mut first_empty = None;
        let mut victim = 0;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            match self.tags[base + w] {
                Some(t) if t == tag => {
                    self.lru[base + w] = self.clock;
                    self.hits += 1;
                    return true;
                }
                Some(_) => {
                    if self.lru[base + w] < best {
                        best = self.lru[base + w];
                        victim = w;
                    }
                }
                None => {
                    if first_empty.is_none() {
                        first_empty = Some(w);
                    }
                }
            }
        }
        self.misses += 1;
        let victim = first_empty.unwrap_or(victim);
        self.tags[base + victim] = Some(tag);
        self.lru[base + victim] = self.clock;
        false
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// L1D → L2 → shared L3 hierarchy of one core's view (L3 sized for the full
/// socket: slice capacity × core count, as on the ring architectures).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    pub l1: Cache,
    pub l2: Cache,
    pub l3: Cache,
}

impl CacheHierarchy {
    pub fn new(spec: &CacheSpec, socket_cores: usize) -> Self {
        CacheHierarchy {
            l1: Cache::new(spec.l1d_kib * 1024, spec.l1d_ways, spec.line_bytes),
            l2: Cache::new(spec.l2_kib * 1024, spec.l2_ways, spec.line_bytes),
            l3: Cache::new(
                spec.l3_slice_kib * 1024 * socket_cores,
                spec.l3_ways,
                spec.line_bytes,
            ),
        }
    }

    /// Access an address through the hierarchy (inclusive fill on miss).
    pub fn access(&mut self, addr: u64) -> AccessResult {
        if self.l1.access(addr) {
            return AccessResult::L1Hit;
        }
        if self.l2.access(addr) {
            return AccessResult::L2Hit;
        }
        if self.l3.access(addr) {
            return AccessResult::L3Hit;
        }
        AccessResult::DramAccess
    }

    /// Stream over a working set once (sequential line-granular reads) and
    /// report the distribution of service levels.
    pub fn stream(&mut self, working_set_bytes: usize, line: usize) -> [u64; 4] {
        let mut counts = [0u64; 4];
        let mut addr = 0u64;
        while (addr as usize) < working_set_bytes {
            let idx = match self.access(addr) {
                AccessResult::L1Hit => 0,
                AccessResult::L2Hit => 1,
                AccessResult::L3Hit => 2,
                AccessResult::DramAccess => 3,
            };
            counts[idx] += 1;
            addr += line as u64;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::SkuSpec;
    use proptest::prelude::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008)); // same line
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_evicts_oldest_way() {
        // Direct-mapped-per-set behavior: 2 ways, fill 3 conflicting lines.
        let mut c = Cache::new(2 * 64, 2, 64); // 1 set, 2 ways
        let stride = 64;
        c.access(0);
        c.access(stride);
        c.access(2 * stride); // evicts line 0
        assert!(!c.access(0), "LRU line should have been evicted");
        assert!(c.access(2 * stride));
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        for addr in (0..32 * 1024).step_by(64) {
            c.access(addr as u64);
        }
        c.reset_stats();
        for addr in (0..32 * 1024).step_by(64) {
            c.access(addr as u64);
        }
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 1.0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_lru_stream() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        // 2× capacity, streamed cyclically: LRU gives 0 % hits.
        for _ in 0..3 {
            for addr in (0..64 * 1024).step_by(64) {
                c.access(addr as u64);
            }
        }
        c.reset_stats();
        for addr in (0..64 * 1024).step_by(64) {
            c.access(addr as u64);
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn paper_17mb_set_is_l3_resident_350mb_is_not() {
        // The paper's L3 benchmark uses 17 MB (< 30 MB L3) and the DRAM
        // benchmark 350 MB (paper Section VII).
        let sku = SkuSpec::xeon_e5_2680_v3();
        let mut h = CacheHierarchy::new(&sku.cache, sku.cores);
        let line = sku.cache.line_bytes;

        let warm = 17 * 1024 * 1024;
        h.stream(warm, line); // warm-up pass
        let counts = h.stream(warm, line);
        let dram_frac = counts[3] as f64 / counts.iter().sum::<u64>() as f64;
        assert_eq!(counts[3], 0, "17 MB must be L3 resident ({dram_frac})");
        assert!(counts[2] > 0, "17 MB must overflow L2 into L3");

        let mut h2 = CacheHierarchy::new(&sku.cache, sku.cores);
        let big = 350 * 1024 * 1024;
        h2.stream(big, line);
        let counts = h2.stream(big, line);
        assert!(
            counts[3] > counts[2],
            "350 MB must be DRAM dominated: {counts:?}"
        );
    }

    #[test]
    fn hierarchy_levels_have_increasing_capacity() {
        let sku = SkuSpec::xeon_e5_2680_v3();
        let h = CacheHierarchy::new(&sku.cache, sku.cores);
        assert!(h.l1.capacity_bytes() < h.l2.capacity_bytes());
        assert!(h.l2.capacity_bytes() < h.l3.capacity_bytes());
        assert_eq!(h.l3.capacity_bytes(), 30 * 1024 * 1024);
    }

    proptest! {
        #[test]
        fn prop_hits_plus_misses_equals_accesses(
            addrs in proptest::collection::vec(0u64..1_000_000, 1..500)
        ) {
            let mut c = Cache::new(4096, 4, 64);
            for a in &addrs {
                c.access(*a);
            }
            prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        }

        #[test]
        fn prop_immediate_reaccess_always_hits(addr in 0u64..10_000_000) {
            let mut c = Cache::new(32 * 1024, 8, 64);
            c.access(addr);
            prop_assert!(c.access(addr));
        }

        #[test]
        fn prop_capacity_is_preserved(
            kib in prop_oneof![Just(32usize), Just(64), Just(256), Just(2048)],
            ways in prop_oneof![Just(4usize), Just(8), Just(16)],
        ) {
            let c = Cache::new(kib * 1024, ways, 64);
            prop_assert_eq!(c.capacity_bytes(), kib * 1024);
        }
    }
}
