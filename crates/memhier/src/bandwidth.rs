//! Analytic read-bandwidth model (paper Figures 7 and 8).
//!
//! Per-core service time for one 64-byte line is split into a core-clock
//! term and an uncore-clock term; the socket-level aggregate is capped by
//! the uncore's service capability (slice/ring for L3, IMC/channels for
//! DRAM). The per-generation parameters encode the architectural story:
//!
//! * **Haswell-EP**: independent uncore, pinned at 3.0 GHz under memory
//!   stalls → the DRAM cap is constant (frequency-independent bandwidth at
//!   saturation), while L3 per-core service is dominated by the core-clock
//!   term (bandwidth follows the core clock, flattening as the uncore term
//!   takes over at high core frequency).
//! * **Sandy Bridge-EP**: the uncore runs at the core clock → both terms
//!   and the IMC cap scale with core frequency; DRAM bandwidth tracks DVFS.
//! * **Westmere-EP**: fixed uncore clock → DRAM cap constant, L3 weakly
//!   dependent on the core clock.

use hsw_hwspec::{calib::bandwidth as cal, CpuGeneration, SkuSpec};

/// Which level of the hierarchy a working set is served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryLevel {
    L1,
    L2,
    L3,
    Dram,
}

impl MemoryLevel {
    /// Classify a per-thread working set against the SKU's cache capacities
    /// (the paper's 17 MB → L3, 350 MB → DRAM choice).
    pub fn classify(spec: &SkuSpec, working_set_bytes: usize) -> MemoryLevel {
        let c = &spec.cache;
        if working_set_bytes <= c.l1d_kib * 1024 {
            MemoryLevel::L1
        } else if working_set_bytes <= c.l2_kib * 1024 {
            MemoryLevel::L2
        } else if working_set_bytes <= c.l3_total_kib(spec.cores) * 1024 {
            MemoryLevel::L3
        } else {
            MemoryLevel::Dram
        }
    }
}

/// Bandwidth-model parameters of one generation.
#[derive(Debug, Clone, PartialEq)]
pub struct BwParams {
    /// L3: core-clock cycles per 64 B line (miss issue, fill).
    pub l3_core_cycles: f64,
    /// L3: uncore-clock cycles per 64 B line (ring + slice, pipelined).
    pub l3_uncore_cycles: f64,
    /// L3 aggregate cap in bytes per uncore cycle per slice.
    pub l3_slice_bytes_per_cycle: f64,
    /// Ring arbitration loss per additional active core.
    pub ring_contention: f64,
    /// Amortization of fixed ring-arbitration overhead as more cores keep
    /// the slices busy — the source of the paper's "slightly better than
    /// linear" core scaling at low concurrency.
    pub ring_amortization: f64,
    /// DRAM: outstanding line fills per core (MSHRs / LFBs).
    pub dram_outstanding: f64,
    /// DRAM: device latency in ns.
    pub dram_device_ns: f64,
    /// DRAM: core-clock cycles per line on the demand side.
    pub dram_core_cycles: f64,
    /// DRAM: uncore-clock cycles per line (ring + IMC).
    pub dram_uncore_cycles: f64,
    /// DRAM channel peak (effective) in GB/s per socket.
    pub dram_peak_gbs: f64,
    /// IMC front-end service in bytes per uncore cycle — the cap that binds
    /// on Sandy Bridge-EP when the (core-coupled) uncore clock drops.
    pub imc_bytes_per_uncore_cycle: f64,
    /// Hyper-Threading bandwidth gain at low concurrency.
    pub ht_gain: f64,
}

impl BwParams {
    pub fn for_generation(generation: CpuGeneration) -> Self {
        // lint:allow(M5): per-generation calibration table, data not firmware policy.
        match generation {
            CpuGeneration::HaswellEp | CpuGeneration::HaswellHe => BwParams {
                l3_core_cycles: 6.4,
                l3_uncore_cycles: 2.0,
                l3_slice_bytes_per_cycle: cal::L3_SLICE_BYTES_PER_UNCORE_CYCLE,
                ring_contention: 0.004,
                ring_amortization: 0.03,
                dram_outstanding: 10.0,
                dram_device_ns: 70.0,
                dram_core_cycles: 15.0,
                dram_uncore_cycles: 24.0,
                dram_peak_gbs: cal::HSW_DRAM_PEAK_GBS,
                imc_bytes_per_uncore_cycle: 30.0,
                ht_gain: cal::HT_LOW_CONCURRENCY_GAIN,
            },
            CpuGeneration::SandyBridgeEp | CpuGeneration::IvyBridgeEp => BwParams {
                l3_core_cycles: 10.0,
                l3_uncore_cycles: 4.0,
                l3_slice_bytes_per_cycle: 12.0,
                ring_contention: 0.004,
                ring_amortization: 0.0,
                dram_outstanding: 10.0,
                dram_device_ns: 75.0,
                dram_core_cycles: 15.0,
                dram_uncore_cycles: 30.0,
                dram_peak_gbs: cal::SNB_DRAM_PEAK_GBS,
                // 41 GB/s at the 2.9 GHz base clock: binds exactly at base.
                imc_bytes_per_uncore_cycle: 14.14,
                ht_gain: 1.12,
            },
            CpuGeneration::WestmereEp => BwParams {
                l3_core_cycles: 5.0,
                l3_uncore_cycles: 9.0,
                l3_slice_bytes_per_cycle: 10.0,
                ring_contention: 0.006,
                ring_amortization: 0.0,
                dram_outstanding: 6.0,
                dram_device_ns: 95.0,
                dram_core_cycles: 10.0,
                dram_uncore_cycles: 35.0,
                dram_peak_gbs: cal::WSM_DRAM_PEAK_GBS,
                imc_bytes_per_uncore_cycle: 20.0,
                ht_gain: 1.10,
            },
            // Mesh interconnect: flatter L3 latency than the ring, more
            // outstanding fills (larger LFB pool), 6-channel DDR4-2666.
            CpuGeneration::SkylakeSp => BwParams {
                l3_core_cycles: 7.0,
                l3_uncore_cycles: 2.5,
                l3_slice_bytes_per_cycle: cal::L3_SLICE_BYTES_PER_UNCORE_CYCLE,
                ring_contention: 0.002,
                ring_amortization: 0.02,
                dram_outstanding: 12.0,
                dram_device_ns: 72.0,
                dram_core_cycles: 15.0,
                dram_uncore_cycles: 20.0,
                dram_peak_gbs: 115.0,
                imc_bytes_per_uncore_cycle: 48.0,
                ht_gain: cal::HT_LOW_CONCURRENCY_GAIN,
            },
        }
    }
}

/// Hyper-Threading factor: a second thread per core adds outstanding
/// requests, which helps while the socket aggregate is not yet limited by
/// the uncore (paper Fig. 8: "multiple threads per core only is beneficial
/// for low-concurrency scenarios"). At and beyond saturation the cap
/// swallows the gain automatically.
fn ht_factor(p: &BwParams, threads_per_core: usize) -> f64 {
    if threads_per_core >= 2 {
        p.ht_gain
    } else {
        1.0
    }
}

/// Socket L3 read bandwidth in GB/s.
///
/// `cores` is the number of active cores, `threads_per_core` 1 or 2,
/// frequencies in GHz.
pub fn l3_read_bandwidth_gbs(
    spec: &SkuSpec,
    cores: usize,
    threads_per_core: usize,
    f_core_ghz: f64,
    f_unc_ghz: f64,
) -> f64 {
    if cores == 0 {
        return 0.0;
    }
    let p = BwParams::for_generation(spec.generation);
    let cores = cores.min(spec.cores);
    // Fixed arbitration overhead amortizes slightly with more active cores.
    let amort = 1.0 + p.ring_amortization * (cores as f64 - 1.0).min(3.0);
    let uncore_cycles = p.l3_uncore_cycles / amort;
    let per_line_ns = p.l3_core_cycles / f_core_ghz + uncore_cycles / f_unc_ghz;
    let per_core = 64.0 / per_line_ns * ht_factor(&p, threads_per_core);
    let contention = 1.0 / (1.0 + p.ring_contention * (cores as f64 - 1.0));
    let demand = cores as f64 * per_core * contention;
    // Slice-side cap: every active core's slice serves in parallel (lines
    // are hashed over all slices, so all `spec.cores` slices participate).
    let cap = spec.cores as f64 * p.l3_slice_bytes_per_cycle * f_unc_ghz;
    demand.min(cap)
}

/// Socket local-DRAM read bandwidth in GB/s.
pub fn dram_read_bandwidth_gbs(
    spec: &SkuSpec,
    cores: usize,
    threads_per_core: usize,
    f_core_ghz: f64,
    f_unc_ghz: f64,
) -> f64 {
    if cores == 0 {
        return 0.0;
    }
    let p = BwParams::for_generation(spec.generation);
    let cores = cores.min(spec.cores);
    let latency_ns =
        p.dram_device_ns + p.dram_core_cycles / f_core_ghz + p.dram_uncore_cycles / f_unc_ghz;
    let per_core = p.dram_outstanding * 64.0 / latency_ns * ht_factor(&p, threads_per_core);
    let demand = cores as f64 * per_core;
    let cap = p
        .dram_peak_gbs
        .min(p.imc_bytes_per_uncore_cycle * f_unc_ghz);
    demand.min(cap)
}

/// Remote-socket package-c-state coupling (paper Section VII): "the memory
/// bandwidth on Sandy Bridge-EP depends on the package c-state of the other
/// socket. This is no longer the case on Haswell-EP, presumably due to the
/// interlocked uncore frequencies." On SNB, snoops to a package-sleeping
/// remote socket stall the local pipeline; Haswell's always-clocked uncore
/// answers promptly.
pub fn remote_sleep_dram_factor(spec: &SkuSpec, other_socket_package_sleeping: bool) -> f64 {
    use hsw_hwspec::CpuGeneration::*;
    if !other_socket_package_sleeping {
        return 1.0;
    }
    match spec.generation {
        SandyBridgeEp | IvyBridgeEp => 0.82,
        _ => 1.0,
    }
}

/// [`dram_read_bandwidth_gbs`] extended with the remote-socket package
/// state (paper Section VII's cross-socket observation).
pub fn dram_read_bandwidth_gbs_ext(
    spec: &SkuSpec,
    cores: usize,
    threads_per_core: usize,
    f_core_ghz: f64,
    f_unc_ghz: f64,
    other_socket_package_sleeping: bool,
) -> f64 {
    dram_read_bandwidth_gbs(spec, cores, threads_per_core, f_core_ghz, f_unc_ghz)
        * remote_sleep_dram_factor(spec, other_socket_package_sleeping)
}

/// The uncore frequency the hardware runs during a bandwidth benchmark
/// (memory stalls present) for each generation: Haswell's UFS raises the
/// uncore to its maximum, Sandy Bridge couples it to the core clock,
/// Westmere keeps it fixed.
pub fn benchmark_uncore_ghz(spec: &SkuSpec, f_core_ghz: f64) -> f64 {
    use hsw_hwspec::UncoreClockSource::*;
    match spec.generation.uncore_clock() {
        Fixed => spec.freq.uncore_max_mhz as f64 / 1000.0,
        CoreCoupled => f_core_ghz,
        Independent => spec.freq.uncore_max_mhz as f64 / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::SkuSpec;
    use proptest::prelude::*;

    fn hsw() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }
    fn snb() -> SkuSpec {
        SkuSpec::xeon_e5_2690()
    }
    fn wsm() -> SkuSpec {
        SkuSpec::xeon_x5670()
    }

    #[test]
    fn classify_matches_paper_working_sets() {
        let sku = hsw();
        assert_eq!(
            MemoryLevel::classify(&sku, 17 * 1024 * 1024),
            MemoryLevel::L3
        );
        assert_eq!(
            MemoryLevel::classify(&sku, 350 * 1024 * 1024),
            MemoryLevel::Dram
        );
        assert_eq!(MemoryLevel::classify(&sku, 16 * 1024), MemoryLevel::L1);
        assert_eq!(MemoryLevel::classify(&sku, 200 * 1024), MemoryLevel::L2);
    }

    #[test]
    fn haswell_dram_is_frequency_independent_at_max_concurrency() {
        // Paper Fig. 7b: "DRAM performance at maximal concurrency does not
        // depend on the core frequency".
        let sku = hsw();
        let base = dram_read_bandwidth_gbs(&sku, 12, 2, 2.5, benchmark_uncore_ghz(&sku, 2.5));
        for f in [1.2, 1.5, 2.0, 2.5] {
            let bw = dram_read_bandwidth_gbs(&sku, 12, 2, f, benchmark_uncore_ghz(&sku, f));
            assert!((bw / base - 1.0).abs() < 0.01, "f={f}: {bw} vs {base}");
        }
    }

    #[test]
    fn sandy_bridge_dram_tracks_core_frequency() {
        // Paper Fig. 7b: "On Sandy Bridge-EP, the uncore frequency reflects
        // the core frequency, making DRAM bandwidth highly dependent".
        let sku = snb();
        let base = dram_read_bandwidth_gbs(&sku, 8, 2, 2.9, benchmark_uncore_ghz(&sku, 2.9));
        let low = dram_read_bandwidth_gbs(&sku, 8, 2, 1.2, benchmark_uncore_ghz(&sku, 1.2));
        assert!(low / base < 0.55, "ratio = {}", low / base);
    }

    #[test]
    fn westmere_dram_is_frequency_independent_like_haswell() {
        let sku = wsm();
        let base = dram_read_bandwidth_gbs(&sku, 6, 2, 2.93, benchmark_uncore_ghz(&sku, 2.93));
        let low = dram_read_bandwidth_gbs(&sku, 6, 2, 1.6, benchmark_uncore_ghz(&sku, 1.6));
        assert!(low / base > 0.95, "ratio = {}", low / base);
    }

    #[test]
    fn haswell_l3_strongly_correlates_with_core_frequency() {
        // Paper Fig. 7a.
        let sku = hsw();
        let base = l3_read_bandwidth_gbs(&sku, 12, 2, 2.5, 3.0);
        let low = l3_read_bandwidth_gbs(&sku, 12, 2, 1.2, 3.0);
        let ratio = low / base;
        assert!((0.45..0.70).contains(&ratio), "ratio = {ratio}");
        // Westmere's L3, with its dedicated northbridge clock, is less
        // influenced by the core clock.
        let w = wsm();
        let wr = l3_read_bandwidth_gbs(&w, 6, 2, 1.6, 2.66)
            / l3_read_bandwidth_gbs(&w, 6, 2, 2.93, 2.66);
        assert!(wr > ratio + 0.1, "wsm {wr} vs hsw {ratio}");
    }

    #[test]
    fn haswell_l3_flattens_at_high_frequency_without_plateau() {
        // "it scales linearly with frequency for lower frequencies but
        // flattens at higher frequency levels without converging".
        let sku = hsw();
        let b = |f: f64| l3_read_bandwidth_gbs(&sku, 12, 2, f, 3.0);
        let low_slope = (b(1.5) - b(1.2)) / 0.3;
        let high_slope = (b(2.5) - b(2.2)) / 0.3;
        assert!(high_slope < low_slope * 0.85, "{high_slope} vs {low_slope}");
        assert!(high_slope > 0.0, "must not fully plateau");
    }

    #[test]
    fn dram_saturates_at_eight_cores() {
        // Paper Fig. 8: "The main memory read bandwidth saturates at
        // 8 cores".
        let sku = hsw();
        let at = |n| dram_read_bandwidth_gbs(&sku, n, 1, 2.5, 3.0);
        assert!(
            at(8) > 0.99 * at(12),
            "8 cores: {} vs 12: {}",
            at(8),
            at(12)
        );
        assert!(at(4) < 0.95 * at(8), "4 cores: {} vs 8: {}", at(4), at(8));
        assert!((at(12) - hsw_hwspec::calib::bandwidth::HSW_DRAM_PEAK_GBS).abs() < 1.0);
    }

    #[test]
    fn ht_helps_only_at_low_concurrency() {
        let sku = hsw();
        let gain_low = dram_read_bandwidth_gbs(&sku, 2, 2, 2.5, 3.0)
            / dram_read_bandwidth_gbs(&sku, 2, 1, 2.5, 3.0);
        let gain_high = dram_read_bandwidth_gbs(&sku, 12, 2, 2.5, 3.0)
            / dram_read_bandwidth_gbs(&sku, 12, 1, 2.5, 3.0);
        assert!(gain_low > 1.1, "low-concurrency HT gain {gain_low}");
        assert!(
            (gain_high - 1.0).abs() < 0.01,
            "saturated HT gain {gain_high}"
        );
    }

    #[test]
    fn l3_scales_slightly_superlinearly_at_low_concurrency() {
        // Paper Fig. 8: "The L3 read bandwidth scales slightly better than
        // linear with the number of cores at low levels of concurrency and
        // approximately linearly otherwise."
        let sku = hsw();
        let b1 = l3_read_bandwidth_gbs(&sku, 1, 1, 2.5, 3.0);
        let b2 = l3_read_bandwidth_gbs(&sku, 2, 1, 2.5, 3.0);
        let b8 = l3_read_bandwidth_gbs(&sku, 8, 1, 2.5, 3.0);
        let b12 = l3_read_bandwidth_gbs(&sku, 12, 1, 2.5, 3.0);
        assert!(b2 > 2.0 * b1, "2-core {b2} vs 2×{b1}");
        // Approximately linear later on (within a few percent per step).
        let r = (b12 / b8) / (12.0 / 8.0);
        assert!((0.93..=1.05).contains(&r), "high-concurrency ratio {r}");
    }

    #[test]
    fn remote_package_sleep_hurts_snb_but_not_haswell() {
        // Paper Section VII: SNB's memory bandwidth depends on the other
        // socket's package c-state; Haswell-EP's does not.
        let s = snb();
        let awake = dram_read_bandwidth_gbs_ext(&s, 8, 2, 2.9, 2.9, false);
        let asleep = dram_read_bandwidth_gbs_ext(&s, 8, 2, 2.9, 2.9, true);
        assert!(asleep < awake * 0.9, "SNB: {asleep} vs {awake}");

        let h = hsw();
        let awake = dram_read_bandwidth_gbs_ext(&h, 12, 2, 2.5, 3.0, false);
        let asleep = dram_read_bandwidth_gbs_ext(&h, 12, 2, 2.5, 3.0, true);
        assert!((asleep - awake).abs() < 1e-9, "HSW must be unaffected");
    }

    #[test]
    fn haswell_beats_sandy_bridge_in_absolute_dram_bandwidth() {
        // DDR4-2133 vs DDR3-1600 (paper Table I).
        let h = dram_read_bandwidth_gbs(&hsw(), 12, 2, 2.5, 3.0);
        let s = dram_read_bandwidth_gbs(&snb(), 8, 2, 2.9, 2.9);
        assert!(h > s * 1.3, "{h} vs {s}");
    }

    proptest! {
        #[test]
        fn prop_bandwidth_monotone_in_cores(n in 1usize..12) {
            let sku = hsw();
            prop_assert!(
                l3_read_bandwidth_gbs(&sku, n + 1, 1, 2.5, 3.0)
                    >= l3_read_bandwidth_gbs(&sku, n, 1, 2.5, 3.0)
            );
            prop_assert!(
                dram_read_bandwidth_gbs(&sku, n + 1, 1, 2.5, 3.0)
                    >= dram_read_bandwidth_gbs(&sku, n, 1, 2.5, 3.0)
            );
        }

        #[test]
        fn prop_bandwidth_monotone_in_core_frequency(f in 1.2f64..2.4) {
            let sku = hsw();
            for n in [1usize, 4, 12] {
                prop_assert!(
                    l3_read_bandwidth_gbs(&sku, n, 1, f + 0.1, 3.0)
                        >= l3_read_bandwidth_gbs(&sku, n, 1, f, 3.0)
                );
                prop_assert!(
                    dram_read_bandwidth_gbs(&sku, n, 1, f + 0.1, 3.0) + 1e-9
                        >= dram_read_bandwidth_gbs(&sku, n, 1, f, 3.0)
                );
            }
        }

        #[test]
        fn prop_dram_never_exceeds_channel_peak(
            n in 1usize..=12,
            f in 1.2f64..=2.5,
            t in 1usize..=2,
        ) {
            let sku = hsw();
            let bw = dram_read_bandwidth_gbs(&sku, n, t, f, 3.0);
            prop_assert!(bw <= hsw_hwspec::calib::bandwidth::HSW_DRAM_PEAK_GBS + 1e-9);
            prop_assert!(bw <= sku.mem.peak_bandwidth_gbs());
        }

        #[test]
        fn prop_l3_exceeds_dram_bandwidth(
            n in 1usize..=12,
            f in 1.2f64..=2.5,
        ) {
            let sku = hsw();
            prop_assert!(
                l3_read_bandwidth_gbs(&sku, n, 1, f, 3.0)
                    > dram_read_bandwidth_gbs(&sku, n, 1, f, 3.0)
            );
        }
    }
}
