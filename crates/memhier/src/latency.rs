//! Load-to-use latency model per memory level.
//!
//! Latencies combine a core-clock component (issue, L1/L2 lookups) with an
//! uncore-clock component (ring traversal, slice lookup, IMC). This is why
//! the paper's uncore frequency scaling moves L3 and DRAM latency — and why
//! "the performance of the uncore can change depending on the previous
//! memory access patterns" (paper Conclusions).

use hsw_hwspec::SkuSpec;

/// L1D load-to-use latency in core cycles (constant across the covered
/// generations).
pub const L1_LATENCY_CYCLES: f64 = 4.0;

/// L2 load-to-use latency in core cycles.
pub const L2_LATENCY_CYCLES: f64 = 12.0;

/// Core-clock cycles spent before a request leaves the core domain
/// (L1+L2 miss handling, super queue).
const L3_CORE_CYCLES: f64 = 10.0;

/// Uncore cycles for slice lookup + data return, excluding ring hops.
const L3_UNCORE_BASE_CYCLES: f64 = 21.0;

/// Uncore cycles per ring hop (one direction; the return trip doubles it).
const RING_HOP_CYCLES: f64 = 1.0;

/// DRAM device latency (activate + CAS + transfer) in ns, independent of
/// both clock domains.
const DRAM_DEVICE_NS: f64 = 55.0;

/// IMC queue occupancy in uncore cycles.
const IMC_CYCLES: f64 = 12.0;

/// Average L3 hit latency in ns for a core in `partition` of the SKU's die.
pub fn l3_latency_ns(spec: &SkuSpec, partition: usize, f_core_ghz: f64, f_unc_ghz: f64) -> f64 {
    let hops = spec
        .die
        .mean_ring_hops(partition.min(spec.die.partitions.len() - 1));
    let uncore_cycles = L3_UNCORE_BASE_CYCLES + 2.0 * RING_HOP_CYCLES * hops;
    L3_CORE_CYCLES / f_core_ghz.max(0.1) + uncore_cycles / f_unc_ghz.max(0.1)
}

/// Average local-DRAM load latency in ns.
pub fn dram_latency_ns(spec: &SkuSpec, partition: usize, f_core_ghz: f64, f_unc_ghz: f64) -> f64 {
    l3_latency_ns(spec, partition, f_core_ghz, f_unc_ghz)
        + IMC_CYCLES / f_unc_ghz.max(0.1)
        + DRAM_DEVICE_NS
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::SkuSpec;
    use proptest::prelude::*;

    fn hsw() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    #[test]
    fn l3_latency_in_plausible_range() {
        // ~34 core cycles at 2.5/3.0 GHz ≈ 12–16 ns on real Haswell-EP.
        let ns = l3_latency_ns(&hsw(), 0, 2.5, 3.0);
        assert!((10.0..20.0).contains(&ns), "l3 = {ns} ns");
    }

    #[test]
    fn dram_latency_in_plausible_range() {
        let ns = dram_latency_ns(&hsw(), 0, 2.5, 3.0);
        assert!((65.0..95.0).contains(&ns), "dram = {ns} ns");
    }

    #[test]
    fn uncore_frequency_moves_l3_latency() {
        // The UFS consequence: halving the uncore clock visibly slows L3.
        let fast = l3_latency_ns(&hsw(), 0, 2.5, 3.0);
        let slow = l3_latency_ns(&hsw(), 0, 2.5, 1.5);
        assert!(slow > fast * 1.5, "{slow} vs {fast}");
    }

    #[test]
    fn dram_device_time_dominates_dram_latency() {
        // Core frequency has limited leverage on DRAM latency — the root of
        // the paper's DVFS-for-memory-bound-codes argument.
        let fast = dram_latency_ns(&hsw(), 0, 2.5, 3.0);
        let slow = dram_latency_ns(&hsw(), 0, 1.2, 3.0);
        assert!(slow / fast < 1.1, "{slow} vs {fast}");
    }

    #[test]
    fn bigger_partition_means_longer_ring() {
        let sku = hsw(); // 12-core die: partitions of 8 and 4
        let big = l3_latency_ns(&sku, 0, 2.5, 3.0);
        let small = l3_latency_ns(&sku, 1, 2.5, 3.0);
        assert!(big > small);
    }

    proptest! {
        #[test]
        fn prop_latency_monotone_in_clocks(
            fc in 1.2f64..3.3,
            fu in 1.2f64..3.0,
        ) {
            let sku = hsw();
            prop_assert!(
                l3_latency_ns(&sku, 0, fc + 0.1, fu) < l3_latency_ns(&sku, 0, fc, fu)
            );
            prop_assert!(
                l3_latency_ns(&sku, 0, fc, fu + 0.1) < l3_latency_ns(&sku, 0, fc, fu)
            );
            prop_assert!(
                dram_latency_ns(&sku, 0, fc, fu) > l3_latency_ns(&sku, 0, fc, fu)
            );
        }
    }
}
