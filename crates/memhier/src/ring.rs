//! Message-level simulator of the partitioned ring interconnect
//! (paper Figure 1, Section II-A).
//!
//! Each partition is a bidirectional ring whose stops host a core + its L3
//! slice; one stop per partition also hosts the IMC. The partitions of the
//! 12-/18-core dies are connected by buffered queues ("The rings are
//! connected via queues to enable data transfers between the partitions").
//!
//! The simulator advances in uncore cycles: messages occupy one link per
//! cycle in their travel direction, links carry one message per cycle per
//! direction, and the inter-ring queues add a fixed buffering delay plus
//! congestion. It exists to *ground* the analytic latency/bandwidth model:
//! tests cross-check the analytic mean-hop figures and the
//! cross-partition penalty against this structural model.

use hsw_hwspec::DieLayout;

/// A location on the die: (partition index, stop index within the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stop {
    pub partition: usize,
    pub index: usize,
}

/// One in-flight message.
#[derive(Debug, Clone)]
struct Message {
    id: u64,
    at: Stop,
    dest: Stop,
    /// +1 or -1: travel direction on the current ring.
    dir: i64,
    /// Cycles spent waiting in an inter-ring queue.
    queued: u32,
    injected_cycle: u64,
}

/// A completed delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    pub id: u64,
    pub latency_cycles: u64,
    pub crossed_partition: bool,
}

/// Fixed buffering delay of the inter-ring queue, in uncore cycles.
pub const QUEUE_DELAY_CYCLES: u32 = 5;

/// The ring network of one die.
#[derive(Debug)]
pub struct RingNetwork {
    ring_sizes: Vec<usize>,
    /// Per-partition, per-direction link occupancy for the current cycle:
    /// `links[p][dir][stop]` = taken.
    links: Vec<[Vec<bool>; 2]>,
    messages: Vec<Message>,
    cycle: u64,
    next_id: u64,
    delivered: Vec<Delivery>,
    /// Stop index hosting the inter-ring queue in each partition.
    queue_stops: Vec<usize>,
}

impl RingNetwork {
    pub fn new(die: &DieLayout) -> Self {
        let ring_sizes: Vec<usize> = die.partitions.iter().map(|p| p.cores).collect();
        let links = ring_sizes
            .iter()
            .map(|n| [vec![false; *n], vec![false; *n]])
            .collect();
        RingNetwork {
            // The queue sits at stop 0 of each ring (adjacent on the die).
            queue_stops: vec![0; ring_sizes.len()],
            links,
            ring_sizes,
            messages: Vec::new(),
            cycle: 0,
            next_id: 0,
            delivered: Vec::new(),
        }
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Shortest-direction distance on one ring.
    pub fn ring_distance(&self, partition: usize, a: usize, b: usize) -> usize {
        let n = self.ring_sizes[partition];
        let fwd = (b + n - a) % n;
        fwd.min(n - fwd)
    }

    /// Minimal (uncongested) latency between two stops in cycles.
    pub fn min_latency(&self, from: Stop, to: Stop) -> u64 {
        if from.partition == to.partition {
            self.ring_distance(from.partition, from.index, to.index) as u64
        } else {
            let q_src = self.queue_stops[from.partition];
            let q_dst = self.queue_stops[to.partition];
            self.ring_distance(from.partition, from.index, q_src) as u64
                + QUEUE_DELAY_CYCLES as u64
                + self.ring_distance(to.partition, q_dst, to.index) as u64
        }
    }

    /// Inject a message; returns its id.
    pub fn inject(&mut self, from: Stop, to: Stop) -> u64 {
        assert!(from.partition < self.ring_sizes.len());
        assert!(from.index < self.ring_sizes[from.partition]);
        assert!(to.index < self.ring_sizes[to.partition]);
        let id = self.next_id;
        self.next_id += 1;
        let dir = self.best_direction(from, to);
        self.messages.push(Message {
            id,
            at: from,
            dest: to,
            dir,
            queued: 0,
            injected_cycle: self.cycle,
        });
        id
    }

    fn best_direction(&self, at: Stop, dest: Stop) -> i64 {
        let n = self.ring_sizes[at.partition];
        let target = if at.partition == dest.partition {
            dest.index
        } else {
            self.queue_stops[at.partition]
        };
        let fwd = (target + n - at.index) % n;
        if fwd <= n - fwd {
            1
        } else {
            -1
        }
    }

    /// Advance one uncore cycle: each message moves one link (if free),
    /// crosses the queue, or delivers.
    pub fn step(&mut self) {
        self.cycle += 1;
        for l in &mut self.links {
            l[0].iter_mut().for_each(|x| *x = false);
            l[1].iter_mut().for_each(|x| *x = false);
        }
        let mut remaining = Vec::with_capacity(self.messages.len());
        let messages = std::mem::take(&mut self.messages);
        for mut m in messages {
            // Delivered?
            if m.at == m.dest {
                self.delivered.push(Delivery {
                    id: m.id,
                    latency_cycles: self.cycle - 1 - m.injected_cycle,
                    crossed_partition: false, // patched below via min check
                });
                continue;
            }
            // Crossing partitions at the queue stop?
            if m.at.partition != m.dest.partition && m.at.index == self.queue_stops[m.at.partition]
            {
                m.queued += 1;
                if m.queued >= QUEUE_DELAY_CYCLES {
                    m.at = Stop {
                        partition: m.dest.partition,
                        index: self.queue_stops[m.dest.partition],
                    };
                    m.queued = 0;
                    m.dir = self.best_direction(m.at, m.dest);
                }
                remaining.push(m);
                continue;
            }
            // Move along the ring if the link is free.
            let n = self.ring_sizes[m.at.partition] as i64;
            let dir_idx = if m.dir > 0 { 0 } else { 1 };
            let link = &mut self.links[m.at.partition][dir_idx][m.at.index];
            if !*link {
                *link = true;
                m.at.index = ((m.at.index as i64 + m.dir).rem_euclid(n)) as usize;
            }
            remaining.push(m);
        }
        self.messages = remaining;
    }

    /// Run until all in-flight messages deliver (or `max_cycles` passes).
    pub fn drain(&mut self, max_cycles: u64) -> Vec<Delivery> {
        let mut budget = max_cycles;
        while !self.messages.is_empty() && budget > 0 {
            self.step();
            budget -= 1;
        }
        std::mem::take(&mut self.delivered)
    }

    pub fn in_flight(&self) -> usize {
        self.messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::DieLayout;
    use proptest::prelude::*;

    fn net12() -> RingNetwork {
        RingNetwork::new(&DieLayout::die12())
    }

    #[test]
    fn same_partition_delivery_takes_ring_distance() {
        let mut net = net12();
        let id = net.inject(
            Stop {
                partition: 0,
                index: 1,
            },
            Stop {
                partition: 0,
                index: 4,
            },
        );
        let deliveries = net.drain(100);
        let d = deliveries.iter().find(|d| d.id == id).unwrap();
        assert_eq!(d.latency_cycles, 3); // distance 3 on the 8-ring
    }

    #[test]
    fn ring_routes_the_short_way_around() {
        let net = net12();
        // 1 → 7 on an 8-stop ring: 2 hops backwards, not 6 forwards.
        assert_eq!(net.ring_distance(0, 1, 7), 2);
        assert_eq!(
            net.min_latency(
                Stop {
                    partition: 0,
                    index: 1
                },
                Stop {
                    partition: 0,
                    index: 7
                }
            ),
            2
        );
    }

    #[test]
    fn cross_partition_pays_the_queue_delay() {
        let mut net = net12();
        let from = Stop {
            partition: 0,
            index: 0,
        };
        let to = Stop {
            partition: 1,
            index: 0,
        };
        let expect = net.min_latency(from, to);
        assert_eq!(expect, QUEUE_DELAY_CYCLES as u64); // both at queue stops
        let id = net.inject(from, to);
        let deliveries = net.drain(100);
        let d = deliveries.iter().find(|d| d.id == id).unwrap();
        assert_eq!(d.latency_cycles, expect);
    }

    #[test]
    fn cross_partition_is_slower_than_local_on_average() {
        let mut local = Vec::new();
        let mut cross = Vec::new();
        for src in 0..8 {
            for dst in 0..8 {
                if src == dst {
                    continue;
                }
                let mut net = net12();
                let id = net.inject(
                    Stop {
                        partition: 0,
                        index: src,
                    },
                    Stop {
                        partition: 0,
                        index: dst,
                    },
                );
                local.push(
                    net.drain(100)
                        .iter()
                        .find(|d| d.id == id)
                        .unwrap()
                        .latency_cycles,
                );
            }
            for dst in 0..4 {
                let mut net = net12();
                let id = net.inject(
                    Stop {
                        partition: 0,
                        index: src,
                    },
                    Stop {
                        partition: 1,
                        index: dst,
                    },
                );
                cross.push(
                    net.drain(100)
                        .iter()
                        .find(|d| d.id == id)
                        .unwrap()
                        .latency_cycles,
                );
            }
        }
        let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            avg(&cross) > avg(&local) + QUEUE_DELAY_CYCLES as f64 * 0.8,
            "cross {} vs local {}",
            avg(&cross),
            avg(&local)
        );
    }

    #[test]
    fn analytic_mean_hops_matches_the_structural_model() {
        // The bandwidth/latency models use mean_ring_hops ≈ n/4; verify
        // against the enumerated shortest paths of the real ring.
        let die = DieLayout::die12();
        let net = RingNetwork::new(&die);
        for (p, part) in die.partitions.iter().enumerate() {
            let n = part.cores;
            let mut total = 0usize;
            let mut count = 0usize;
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        total += net.ring_distance(p, a, b);
                        count += 1;
                    }
                }
            }
            let enumerated = total as f64 / count as f64;
            let analytic = die.mean_ring_hops(p);
            assert!(
                (enumerated - analytic).abs() < 1.0,
                "partition {p}: enumerated {enumerated:.2} vs analytic {analytic:.2}"
            );
        }
    }

    #[test]
    fn contention_increases_latency_under_load() {
        // Saturate one direction of the ring and compare against the
        // uncongested baseline.
        let mut net = net12();
        let mut ids = Vec::new();
        for i in 0..24 {
            // Everyone goes from stop (i % 4) to stop 5: shared links.
            ids.push(net.inject(
                Stop {
                    partition: 0,
                    index: i % 4,
                },
                Stop {
                    partition: 0,
                    index: 5,
                },
            ));
        }
        let deliveries = net.drain(10_000);
        assert_eq!(deliveries.len(), 24, "all must deliver");
        let max = deliveries.iter().map(|d| d.latency_cycles).max().unwrap();
        let base = net12().min_latency(
            Stop {
                partition: 0,
                index: 4,
            },
            Stop {
                partition: 0,
                index: 5,
            },
        );
        assert!(max > base + 3, "congested max {max} vs base {base}");
    }

    #[test]
    fn all_messages_eventually_deliver_on_the_18_core_die() {
        let die = DieLayout::die18();
        let mut net = RingNetwork::new(&die);
        let mut n = 0;
        for src in 0..8 {
            for dst in 0..10 {
                net.inject(
                    Stop {
                        partition: 0,
                        index: src,
                    },
                    Stop {
                        partition: 1,
                        index: dst,
                    },
                );
                n += 1;
            }
        }
        let deliveries = net.drain(100_000);
        assert_eq!(deliveries.len(), n);
        assert_eq!(net.in_flight(), 0);
    }

    proptest! {
        #[test]
        fn prop_delivery_latency_at_least_min_latency(
            src in 0usize..8,
            dst_p in 0usize..2,
            dst_i in 0usize..4,
        ) {
            let mut net = net12();
            let from = Stop { partition: 0, index: src };
            let to = Stop { partition: dst_p, index: dst_i };
            let min = net.min_latency(from, to);
            let id = net.inject(from, to);
            let deliveries = net.drain(10_000);
            let d = deliveries.iter().find(|d| d.id == id).unwrap();
            prop_assert!(d.latency_cycles >= min);
            // And without contention it is exactly the minimum.
            prop_assert_eq!(d.latency_cycles, min);
        }

        #[test]
        fn prop_distance_is_symmetric_and_bounded(
            a in 0usize..8,
            b in 0usize..8,
        ) {
            let net = net12();
            prop_assert_eq!(net.ring_distance(0, a, b), net.ring_distance(0, b, a));
            prop_assert!(net.ring_distance(0, a, b) <= 4);
        }
    }
}
