//! Hardware prefetcher model (L2 streamer).
//!
//! The paper's bandwidth benchmarks run with "hardware prefetchers enabled"
//! (Section VII) — without the L2 streamer, sequential read bandwidth would
//! be latency-bound instead of bandwidth-bound. This module implements a
//! stream detector in the style of the Intel L2 streamer: per-4KiB-page
//! trackers that detect ascending/descending line sequences and, once
//! trained, pull lines ahead of the demand stream.

use crate::cache::{AccessResult, CacheHierarchy};

/// Lines fetched ahead once a stream is confirmed.
const PREFETCH_DEGREE: u64 = 4;
/// Consecutive same-direction accesses required to confirm a stream.
const TRAIN_THRESHOLD: u8 = 2;
/// Concurrent page trackers (the real streamer tracks 32 streams).
const TRACKERS: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Tracker {
    page: u64,
    last_line: u64,
    direction: i64,
    confidence: u8,
}

/// The L2 streamer: detects line-granular streams within 4 KiB pages.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    trackers: Vec<Tracker>,
    next_victim: usize,
    line_bytes: u64,
    pub issued: u64,
    pub useful_hint: u64,
}

impl StreamPrefetcher {
    pub fn new(line_bytes: usize) -> Self {
        StreamPrefetcher {
            trackers: Vec::with_capacity(TRACKERS),
            next_victim: 0,
            line_bytes: line_bytes as u64,
            issued: 0,
            useful_hint: 0,
        }
    }

    /// Observe a demand access; returns the addresses to prefetch.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        let line = addr / self.line_bytes;
        let page = addr >> 12;
        if let Some(t) = self.trackers.iter_mut().find(|t| t.page == page) {
            let delta = line as i64 - t.last_line as i64;
            if delta == t.direction && delta != 0 {
                t.confidence = (t.confidence + 1).min(TRAIN_THRESHOLD + 1);
            } else if delta != 0 {
                t.direction = delta.signum();
                t.confidence = 1;
            }
            t.last_line = line;
            if t.confidence >= TRAIN_THRESHOLD {
                let dir = t.direction;
                let mut out = Vec::with_capacity(PREFETCH_DEGREE as usize);
                for k in 1..=PREFETCH_DEGREE {
                    let target = line as i64 + dir * k as i64;
                    if target >= 0 {
                        let target_addr = target as u64 * self.line_bytes;
                        // Stay within the 4 KiB page like the real streamer.
                        if target_addr >> 12 == page {
                            out.push(target_addr);
                        }
                    }
                }
                self.issued += out.len() as u64;
                return out;
            }
            return Vec::new();
        }
        // Allocate a tracker (round-robin replacement).
        let t = Tracker {
            page,
            last_line: line,
            direction: 0,
            confidence: 0,
        };
        if self.trackers.len() < TRACKERS {
            self.trackers.push(t);
        } else {
            self.trackers[self.next_victim] = t;
            self.next_victim = (self.next_victim + 1) % TRACKERS;
        }
        Vec::new()
    }
}

/// A cache hierarchy fronted by the streamer: demand accesses train the
/// prefetcher, prefetches fill the hierarchy ahead of the stream.
#[derive(Debug)]
pub struct PrefetchedHierarchy {
    pub hierarchy: CacheHierarchy,
    pub prefetcher: StreamPrefetcher,
    pub demand_accesses: u64,
    pub demand_dram: u64,
}

impl PrefetchedHierarchy {
    pub fn new(hierarchy: CacheHierarchy, line_bytes: usize) -> Self {
        PrefetchedHierarchy {
            hierarchy,
            prefetcher: StreamPrefetcher::new(line_bytes),
            demand_accesses: 0,
            demand_dram: 0,
        }
    }

    /// One demand access through prefetcher + hierarchy.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        let result = self.hierarchy.access(addr);
        self.demand_accesses += 1;
        if result == AccessResult::DramAccess {
            self.demand_dram += 1;
        }
        for pf in self.prefetcher.observe(addr) {
            // Prefetches fill the hierarchy; their own misses are the
            // prefetcher doing its job (not demand misses).
            let _ = self.hierarchy.access(pf);
        }
        result
    }

    /// Fraction of demand accesses that had to wait for DRAM themselves.
    pub fn demand_dram_fraction(&self) -> f64 {
        if self.demand_accesses == 0 {
            return 0.0;
        }
        self.demand_dram as f64 / self.demand_accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::SkuSpec;
    use proptest::prelude::*;

    fn fresh() -> PrefetchedHierarchy {
        let sku = SkuSpec::xeon_e5_2680_v3();
        PrefetchedHierarchy::new(
            CacheHierarchy::new(&sku.cache, sku.cores),
            sku.cache.line_bytes,
        )
    }

    #[test]
    fn sequential_stream_is_mostly_covered_by_the_prefetcher() {
        // A DRAM-sized sequential read: after training, most demand
        // accesses hit lines the streamer already pulled.
        let mut h = fresh();
        for addr in (0..64 * 1024 * 1024u64).step_by(64) {
            h.access(addr);
        }
        let frac = h.demand_dram_fraction();
        assert!(
            frac < 0.35,
            "demand-DRAM fraction {frac:.2} — prefetcher not covering"
        );
        assert!(h.prefetcher.issued > 100_000);
    }

    #[test]
    fn descending_streams_are_detected_too() {
        let mut h = fresh();
        let top = 4 * 1024 * 1024u64;
        let mut addr = top - 64;
        loop {
            h.access(addr);
            if addr == 0 {
                break;
            }
            addr -= 64;
        }
        assert!(
            h.demand_dram_fraction() < 0.4,
            "{}",
            h.demand_dram_fraction()
        );
    }

    #[test]
    fn random_accesses_gain_nothing() {
        let mut h = fresh();
        // A page-hopping pattern the stream detector cannot train on.
        let mut addr = 0u64;
        for i in 0..50_000u64 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i) % (1 << 33);
            h.access(addr & !63);
        }
        assert!(
            h.demand_dram_fraction() > 0.9,
            "{}",
            h.demand_dram_fraction()
        );
        // And the prefetcher stayed quiet.
        assert!(
            (h.prefetcher.issued as f64) < 0.2 * h.demand_accesses as f64,
            "issued {}",
            h.prefetcher.issued
        );
    }

    #[test]
    fn prefetches_stay_within_the_page() {
        let mut pf = StreamPrefetcher::new(64);
        // Train at the very end of a page.
        pf.observe(4096 - 192);
        pf.observe(4096 - 128);
        let targets = pf.observe(4096 - 64);
        for t in targets {
            assert!(t < 4096, "prefetch {t} crossed the page");
        }
    }

    proptest! {
        #[test]
        fn prop_prefetcher_never_issues_before_training(
            start in 0u64..1_000_000,
        ) {
            let mut pf = StreamPrefetcher::new(64);
            // First two accesses to a fresh page can never prefetch.
            prop_assert!(pf.observe(start & !63).is_empty());
        }

        #[test]
        fn prop_trained_stream_prefetches_ahead(
            page in 0u64..1000,
        ) {
            let mut pf = StreamPrefetcher::new(64);
            let base = page << 12;
            pf.observe(base);
            pf.observe(base + 64);
            let t = pf.observe(base + 128);
            prop_assert!(!t.is_empty());
            for x in t {
                prop_assert!(x > base + 128);
            }
        }
    }
}
