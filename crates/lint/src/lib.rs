//! `hsw-lint` — project-specific static analysis for the Haswell survey
//! workspace.
//!
//! The reproduction's central guarantee is the determinism contract:
//! `survey.json` is byte-identical for any `--jobs`, any
//! `RAYON_NUM_THREADS`, and either time engine. The dynamic tests pin that
//! contract end to end (subprocess `cmp` legs in CI), but they only catch
//! a regression *after* it changes bytes. This crate catches the two ways
//! such regressions have entered codebases like this one — wall-clock /
//! ambient entropy in a result path, and unordered-collection iteration —
//! at the source level, plus the MSR model's cross-file invariants that no
//! compiler pass checks (gate allowlist ↔ address constants, encode ↔
//! decode bitfields, experiment modules ↔ survey registry).
//!
//! No `syn`, no crates.io: a small token-level lexer ([`lexer`]) feeds a
//! rule engine ([`rules`] for the textual tier, [`model`] for the semantic
//! tier), and [`workspace::lint_workspace`] wires both to the repo layout.
//! Suppressions are per-line `// lint:allow(rule): <justification>`
//! comments; an allow without a justification suppresses nothing.

pub mod lexer;
pub mod model;
pub mod parser;
pub mod rules;
pub mod semantic;
pub mod workspace;

pub use rules::{scan_file, FileScope, Finding, KNOWN_RULES};
pub use workspace::{find_workspace_root, lint_workspace, lint_workspace_uncached};

/// Render findings as a deterministic JSON array (sorted, stable keys).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"byte\": {}, \"len\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.byte,
            f.len,
            f.rule,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_valid_and_escaped() {
        let findings = vec![Finding::new(
            "a/b.rs",
            3,
            "D2",
            "uses `HashMap` (\"unordered\")".to_string(),
        )];
        let json = findings_to_json(&findings);
        assert!(json.contains("\\\"unordered\\\""));
        assert!(json.contains("\"byte\": 0"));
        assert!(json.contains("\"len\": 0"));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(findings_to_json(&[]), "[]\n");
    }
}
