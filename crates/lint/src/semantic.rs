//! Tier-3 (semantic) rules: the workspace model and the checks that need
//! it.
//!
//! | Rule | Meaning |
//! |---|---|
//! | M6 | every `&mut self` method on a plane-tracked type must mark the planes it mutates |
//! | P1 | no `unwrap`/`expect`/computed indexing reachable from the tick hot path |
//!
//! The model is deliberately conservative. Types are linked to their
//! dirty-plane mask structurally: a "mask type" is any type declaring two
//! or more single-bit consts (`Mask(1 << n)`), and an "audited type" is
//! any struct owning a field of a mask type (for this workspace:
//! `Socket.dirty: PlaneMask`). The field→plane partition is *learned*
//! from the restore path — a write to `self.f` guarded by
//! `planes.intersects(Mask::X)` maps `f` to plane `X` — so the linter
//! never hardcodes the socket layout and keeps up as planes move. The
//! call graph is name-based (no type inference): a call edge goes to
//! every function that could plausibly be the callee, which can only
//! over-approximate reachability — P1 may audit too much, never too
//! little.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::StructDef;
use crate::parser::{BodyOp, FieldEffect, ParsedFile, Recv};
use crate::rules::{Finding, PlaneAnn};

/// One file's parse results, as the semantic pass consumes them.
pub(crate) struct SemFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The file belongs to a result-producing crate (P1 findings apply).
    pub result_crate: bool,
    pub parsed: ParsedFile,
    pub structs: Vec<StructDef>,
}

/// Std-library methods that mutate their receiver. The workspace's own
/// `&mut self` method names are added on top; any method name ending in
/// `_mut` also counts.
const STD_MUT_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "take",
    "replace",
    "extend",
    "extend_from_slice",
    "truncate",
    "resize",
    "fill",
    "swap",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "dedup",
    "drain",
    "retain",
    "append",
    "push_str",
    "push_front",
    "push_back",
    "pop_front",
    "pop_back",
    "get_or_insert",
    "get_or_insert_with",
    "clone_from",
    "copy_from_slice",
    "rotate_left",
    "rotate_right",
    "reverse",
    "entry",
    "set",
];

/// Methods called `.unwrap()`/`.expect()` that P1 flags.
const P1_PANICKY: &[&str] = &["unwrap", "expect"];

/// A mask type's const table: each const name expands to the set of
/// primitive plane names it unions.
struct MaskInfo {
    /// Single-bit plane names, in declaration order of discovery.
    primitives: BTreeSet<String>,
    /// Every const of this type, expanded to primitive planes.
    consts: BTreeMap<String, BTreeSet<String>>,
}

/// A struct that owns a mask-typed field and is therefore audited by M6.
struct Audited {
    type_name: String,
    mask_field: String,
    mask_type: String,
    /// field name → planes whose restore rewrites it (learned from
    /// `intersects(Mask::X)`-guarded writes).
    field_planes: BTreeMap<String, BTreeSet<String>>,
}

/// The workspace semantic model.
pub(crate) struct Semantic<'a> {
    files: &'a [SemFile],
    /// Global fn id → (file index, fn index).
    fns: Vec<(usize, usize)>,
    /// fn name → global ids (free fns and methods alike).
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// (impl type, fn name) → global id (first definition wins).
    methods: BTreeMap<(&'a str, &'a str), usize>,
    /// Names of every `&mut self` method in the workspace.
    mut_method_names: BTreeSet<&'a str>,
    mask_types: BTreeMap<String, MaskInfo>,
    audited: Vec<Audited>,
}

impl<'a> Semantic<'a> {
    pub(crate) fn build(files: &'a [SemFile]) -> Semantic<'a> {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        let mut mut_method_names = BTreeSet::new();
        for (fi, file) in files.iter().enumerate() {
            for (ki, f) in file.parsed.fns.iter().enumerate() {
                let id = fns.len();
                fns.push((fi, ki));
                by_name.entry(f.name.as_str()).or_default().push(id);
                if let Some(ty) = &f.self_ty {
                    methods.entry((ty.as_str(), f.name.as_str())).or_insert(id);
                }
                if f.mut_self {
                    mut_method_names.insert(f.name.as_str());
                }
            }
        }
        let mask_types = find_mask_types(files);
        let mut model = Semantic {
            files,
            fns,
            by_name,
            methods,
            mut_method_names,
            mask_types,
            audited: Vec::new(),
        };
        model.audited = model.find_audited();
        model
    }

    fn fn_item(&self, id: usize) -> &'a crate::parser::FnItem {
        let (fi, ki) = self.fns[id];
        &self.files[fi].parsed.fns[ki]
    }

    /// Does `effect` mutate the field it applies to?
    fn is_mutation(&self, effect: &FieldEffect) -> bool {
        match effect {
            FieldEffect::Read => false,
            FieldEffect::Assign { .. } | FieldEffect::MutBorrow => true,
            FieldEffect::MethodRecv(m) => {
                m.ends_with("_mut")
                    || STD_MUT_METHODS.contains(&m.as_str())
                    || self.mut_method_names.contains(m.as_str())
            }
        }
    }

    /// Structs owning a mask-typed field, with their field→plane map.
    fn find_audited(&self) -> Vec<Audited> {
        let mut audited = Vec::new();
        for file in self.files {
            for def in &file.structs {
                // The mask type itself (a tuple struct / newtype) is not
                // audited, only owners of a mask-typed *named* field.
                if self.mask_types.contains_key(&def.name) {
                    continue;
                }
                let Some(mf) = def.fields.iter().find(|f| {
                    f.type_idents
                        .iter()
                        .any(|t| self.mask_types.contains_key(t))
                }) else {
                    continue;
                };
                let mask_type = mf
                    .type_idents
                    .iter()
                    .find(|t| self.mask_types.contains_key(*t))
                    .unwrap()
                    .clone();
                audited.push(Audited {
                    type_name: def.name.clone(),
                    mask_field: mf.name.clone(),
                    mask_type,
                    field_planes: self.learn_field_planes(&def.name, mf.name.as_str()),
                });
            }
        }
        audited
    }

    /// Learn which planes rewrite which fields from the restore path: a
    /// mutation of `self.f` guarded by `…intersects(Mask::X)…` maps `f`
    /// to plane `X`.
    fn learn_field_planes(
        &self,
        type_name: &str,
        mask_field: &str,
    ) -> BTreeMap<String, BTreeSet<String>> {
        let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let all_consts: BTreeSet<&str> = self
            .mask_types
            .values()
            .flat_map(|mi| mi.consts.keys().map(String::as_str))
            .collect();
        for file in self.files {
            for f in &file.parsed.fns {
                if f.self_ty.as_deref() != Some(type_name) {
                    continue;
                }
                for op in &f.ops {
                    let BodyOp::SelfField {
                        field,
                        effect,
                        guards,
                        ..
                    } = op
                    else {
                        continue;
                    };
                    if field == mask_field || !self.is_mutation(effect) {
                        continue;
                    }
                    if !guards.iter().any(|g| g == "intersects") {
                        continue;
                    }
                    let planes: BTreeSet<String> = guards
                        .iter()
                        .filter(|g| all_consts.contains(g.as_str()))
                        .flat_map(|g| self.expand_const(g).into_iter())
                        .collect();
                    if !planes.is_empty() {
                        map.entry(field.clone()).or_default().extend(planes);
                    }
                }
            }
        }
        map
    }

    /// Expand a plane-const name to primitive planes (across mask types;
    /// const names are unambiguous in practice).
    fn expand_const(&self, name: &str) -> BTreeSet<String> {
        for mi in self.mask_types.values() {
            if let Some(set) = mi.consts.get(name) {
                return set.clone();
            }
        }
        BTreeSet::new()
    }

    /// The set of planes a method marks dirty, directly or through
    /// same-type calls (`mark_dirty`-style choke points). A plain
    /// assignment to the mask field is mask *management* (mark-all /
    /// restore) and counts as everything.
    fn coverage(
        &self,
        aud: &Audited,
        id: usize,
        memo: &mut BTreeMap<usize, BTreeSet<String>>,
        visiting: &mut BTreeSet<usize>,
    ) -> BTreeSet<String> {
        if let Some(c) = memo.get(&id) {
            return c.clone();
        }
        if !visiting.insert(id) {
            return BTreeSet::new(); // recursion cycle
        }
        let mi = &self.mask_types[&aud.mask_type];
        let all: BTreeSet<String> = mi.primitives.clone();
        let f = self.fn_item(id);
        let mut cov = BTreeSet::new();
        for op in &f.ops {
            match op {
                BodyOp::SelfField { field, effect, .. } if *field == aud.mask_field => {
                    match effect {
                        FieldEffect::Assign { op: "=", .. } => {
                            cov.extend(all.iter().cloned());
                        }
                        FieldEffect::Assign {
                            op: "|=",
                            rhs_idents,
                        } => {
                            // Unknown idents on the RHS (a `planes`
                            // parameter, a computed mask) mean the caller
                            // chose the planes: treat as all.
                            let mut unknown = false;
                            for id in rhs_idents {
                                if mi.consts.contains_key(id) {
                                    cov.extend(self.expand_const(id));
                                } else if id != &aud.mask_type
                                    && id != "union"
                                    && id != "bits"
                                    && id != "self"
                                {
                                    unknown = true;
                                }
                            }
                            if unknown {
                                cov.extend(all.iter().cloned());
                            }
                        }
                        _ => {}
                    }
                }
                BodyOp::Method {
                    name,
                    recv: Recv::SelfDirect,
                    ..
                } => {
                    if let Some(&callee) =
                        self.methods.get(&(aud.type_name.as_str(), name.as_str()))
                    {
                        let sub = self.coverage(aud, callee, memo, visiting);
                        cov.extend(sub);
                    }
                }
                _ => {}
            }
        }
        visiting.remove(&id);
        memo.insert(id, cov.clone());
        cov
    }

    /// M6: every `&mut self` method on an audited type must mark the
    /// planes of every field it mutates — directly, through a same-type
    /// choke point, via a justified `// plane:dirty(<MASK>)` annotation,
    /// or (for private methods) by being called only from covering
    /// methods.
    pub(crate) fn check_m6(&self, anns: &mut [Vec<PlaneAnn>]) -> Vec<Finding> {
        let mut findings = Vec::new();
        for aud in &self.audited {
            let mut memo = BTreeMap::new();
            for (&(ty, _), &id) in self.methods.iter() {
                if ty != aud.type_name {
                    continue;
                }
                let (fi, _) = self.fns[id];
                let f = self.fn_item(id);
                if !f.mut_self {
                    continue;
                }
                let cov = self.coverage(aud, id, &mut memo, &mut BTreeSet::new());

                // Uncovered mutations before annotations are applied.
                let mut uncovered: BTreeMap<&str, (&BTreeSet<String>, u32, u32)> = BTreeMap::new();
                for op in &f.ops {
                    let BodyOp::SelfField {
                        field,
                        effect,
                        line,
                        byte,
                        ..
                    } = op
                    else {
                        continue;
                    };
                    if *field == aud.mask_field || !self.is_mutation(effect) {
                        continue;
                    }
                    let Some(planes) = aud.field_planes.get(field) else {
                        continue; // unmapped state (snap-skipped scratch)
                    };
                    if planes.is_disjoint(&cov) {
                        uncovered
                            .entry(field.as_str())
                            .or_insert((planes, *line, *byte));
                    }
                }

                // A justified annotation on the method covers its planes.
                if !uncovered.is_empty() {
                    let mi = &self.mask_types[&aud.mask_type];
                    for ann in find_anns_for_fn(&mut anns[fi], f.line) {
                        let mut ann_planes = BTreeSet::new();
                        for p in &ann.planes {
                            ann_planes.extend(mi.consts.get(p).cloned().unwrap_or_default());
                        }
                        let before = uncovered.len();
                        uncovered.retain(|_, (planes, _, _)| planes.is_disjoint(&ann_planes));
                        if uncovered.len() < before {
                            ann.used = true;
                        }
                    }
                }

                // A private method whose every same-type caller covers the
                // missing planes is a helper inside a marking scope.
                if !uncovered.is_empty() && !f.is_pub {
                    let callers: Vec<usize> = self
                        .methods
                        .iter()
                        .filter(|(&(ty2, _), _)| ty2 == aud.type_name)
                        .map(|(_, &cid)| cid)
                        .filter(|&cid| {
                            cid != id
                                && self.fn_item(cid).ops.iter().any(|op| {
                                    matches!(
                                        op,
                                        BodyOp::Method { name, recv: Recv::SelfDirect, .. }
                                            if *name == f.name
                                    )
                                })
                        })
                        .collect();
                    if !callers.is_empty() {
                        let all_cover = callers.iter().all(|&cid| {
                            let ccov = self.coverage(aud, cid, &mut memo, &mut BTreeSet::new());
                            uncovered
                                .values()
                                .all(|(planes, _, _)| !planes.is_disjoint(&ccov))
                        });
                        if all_cover {
                            uncovered.clear();
                        }
                    }
                }

                for (field, (planes, line, byte)) in uncovered {
                    let planes_s: Vec<&str> = planes.iter().map(String::as_str).collect();
                    findings.push(
                        Finding::new(
                            &self.files[fi].path,
                            line,
                            "M6",
                            format!(
                                "`{}::{}` mutates `{field}` (plane {}) without marking it \
                                 dirty: a warm-forked sweep point would restore stale \
                                 state; mark via `self.{} |= …`, call a marking method, \
                                 or justify with `// plane:dirty({})`",
                                aud.type_name,
                                f.name,
                                planes_s.join("|"),
                                aud.mask_field,
                                planes_s.join("|"),
                            ),
                        )
                        .with_span(byte, field.len() as u32),
                    );
                }
            }
        }
        findings.sort();
        findings
    }

    /// Validate `plane:dirty` plane *names* (A1) — possible only here,
    /// where the mask-const table exists. Unattached annotations are the
    /// workspace pass's business (A2, via the `used` flags).
    pub(crate) fn validate_ann_names(&self, anns: &[Vec<PlaneAnn>]) -> Vec<Finding> {
        if self.mask_types.is_empty() {
            return Vec::new();
        }
        let known: BTreeSet<&str> = self
            .mask_types
            .values()
            .flat_map(|mi| mi.consts.keys().map(String::as_str))
            .collect();
        let mut findings = Vec::new();
        for (fi, file_anns) in anns.iter().enumerate() {
            for ann in file_anns {
                if ann.malformed.is_some() {
                    continue; // already an A1 syntax finding
                }
                for p in &ann.planes {
                    if !known.contains(p.as_str()) {
                        findings.push(
                            Finding::new(
                                &self.files[fi].path,
                                ann.line,
                                "A1",
                                format!(
                                    "plane:dirty names unknown plane `{p}` (known: {})",
                                    known.iter().copied().collect::<Vec<_>>().join(", ")
                                ),
                            )
                            .with_span(ann.byte, ann.len),
                        );
                    }
                }
            }
        }
        findings
    }

    /// P1: panic paths reachable from the tick hot path. BFS over the
    /// name-based call graph from `roots` (e.g. `Socket::tick`,
    /// `Node::step`); in every reachable function of a result crate,
    /// `.unwrap()`, `.expect(…)` and computed (`arr[i + 1]`-style)
    /// indexing are flagged.
    pub(crate) fn check_p1(&self, roots: &[(&str, &str)]) -> Vec<Finding> {
        let mut queue: Vec<usize> = roots
            .iter()
            .filter_map(|&(ty, name)| self.methods.get(&(ty, name)).copied())
            .collect();
        let mut reachable: BTreeSet<usize> = queue.iter().copied().collect();
        while let Some(id) = queue.pop() {
            let f = self.fn_item(id);
            for op in &f.ops {
                let callees: Vec<usize> = match op {
                    BodyOp::Call { path, .. } => {
                        let last = path.last().map(String::as_str).unwrap_or("");
                        // `Type::method(…)` resolves exactly when the
                        // qualifier names a known impl type.
                        let qualified = path
                            .len()
                            .checked_sub(2)
                            .and_then(|q| self.methods.get(&(path[q].as_str(), last)));
                        match qualified {
                            Some(&id) => vec![id],
                            None => self.by_name.get(last).cloned().unwrap_or_default(),
                        }
                    }
                    BodyOp::Method { name, recv, .. } => {
                        let exact = match recv {
                            Recv::SelfDirect => f
                                .self_ty
                                .as_deref()
                                .and_then(|ty| self.methods.get(&(ty, name.as_str()))),
                            _ => None,
                        };
                        match exact {
                            Some(&id) => vec![id],
                            None => self
                                .by_name
                                .get(name.as_str())
                                .map(|ids| {
                                    ids.iter()
                                        .copied()
                                        .filter(|&i| self.fn_item(i).has_self)
                                        .collect()
                                })
                                .unwrap_or_default(),
                        }
                    }
                    _ => Vec::new(),
                };
                for c in callees {
                    if reachable.insert(c) {
                        queue.push(c);
                    }
                }
            }
        }

        let root_names: Vec<String> = roots
            .iter()
            .map(|(ty, name)| format!("{ty}::{name}"))
            .collect();
        let roots_s = root_names.join("/");
        let mut findings = Vec::new();
        for &id in &reachable {
            let (fi, _) = self.fns[id];
            if !self.files[fi].result_crate {
                continue;
            }
            let f = self.fn_item(id);
            for op in &f.ops {
                match op {
                    BodyOp::Method {
                        name, line, byte, ..
                    } if P1_PANICKY.contains(&name.as_str()) => {
                        findings.push(
                            Finding::new(
                                &self.files[fi].path,
                                *line,
                                "P1",
                                format!(
                                    "`.{name}()` in `{}` is reachable from {roots_s}: a \
                                     panic here poisons every sweep point sharing the \
                                     pool; handle the failure or justify with \
                                     `// lint:allow(P1): <why it cannot fire>`",
                                    f.name
                                ),
                            )
                            .with_span(*byte, name.len() as u32),
                        );
                    }
                    BodyOp::Index {
                        arith: true,
                        line,
                        byte,
                    } => {
                        findings.push(
                            Finding::new(
                                &self.files[fi].path,
                                *line,
                                "P1",
                                format!(
                                    "computed index in `{}` is reachable from {roots_s}: \
                                     an off-by-one panics mid-sweep; use `get`/checked \
                                     arithmetic or justify with `// lint:allow(P1): <why \
                                     the bound holds>`",
                                    f.name
                                ),
                            )
                            .with_span(*byte, 1),
                        );
                    }
                    _ => {}
                }
            }
        }
        findings.sort();
        findings.dedup();
        findings
    }
}

/// Mask types: any type with ≥ 2 single-bit consts (`T(1 << n)`), plus
/// the expansion of every const of that type to primitive planes.
fn find_mask_types(files: &[SemFile]) -> BTreeMap<String, MaskInfo> {
    // Group consts by declared type name.
    let mut by_type: BTreeMap<&str, Vec<&crate::parser::ConstItem>> = BTreeMap::new();
    for file in files {
        for c in &file.parsed.consts {
            if let Some(ty) = c.ty.last() {
                by_type.entry(ty.as_str()).or_default().push(c);
            }
        }
    }
    // A single-bit const must *construct* the mask type (`Mask(1 << n)`):
    // plain `1 << n` integer consts (MSR bit positions, feature flags)
    // must not turn `u64` into a mask type.
    let single_bit = |ty: &str, c: &crate::parser::ConstItem| {
        c.rhs_shift
            && c.rhs_ints.len() == 2
            && c.rhs_ints[0] == 1
            && c.rhs_idents.first().map(String::as_str) == Some(ty)
    };
    const PRIMITIVES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];

    let mut out = BTreeMap::new();
    for (ty, consts) in by_type {
        if PRIMITIVES.contains(&ty) {
            continue;
        }
        let primitives: BTreeSet<String> = consts
            .iter()
            .filter(|c| single_bit(ty, c))
            .map(|c| c.name.clone())
            .collect();
        if primitives.len() < 2 {
            continue;
        }
        let mut table: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for p in &primitives {
            table.insert(p.clone(), BTreeSet::from([p.clone()]));
        }
        // Non-primitive consts: NONE-like (zero literal) → empty;
        // aggregate literal (`T(0xFF)`) → all planes; unions of known
        // consts → resolved to fixpoint; anything unresolvable → all.
        let compound: Vec<&&crate::parser::ConstItem> =
            consts.iter().filter(|c| !single_bit(ty, c)).collect();
        let names: BTreeSet<&str> = consts.iter().map(|c| c.name.as_str()).collect();
        loop {
            let mut progressed = false;
            for c in &compound {
                if table.contains_key(&c.name) {
                    continue;
                }
                let refs: Vec<&String> = c
                    .rhs_idents
                    .iter()
                    .filter(|id| names.contains(id.as_str()) && *id != &c.name)
                    .collect();
                if refs.is_empty() {
                    let set = if c.rhs_ints.iter().all(|&v| v == 0) {
                        BTreeSet::new()
                    } else {
                        primitives.clone()
                    };
                    table.insert(c.name.clone(), set);
                    progressed = true;
                } else if refs.iter().all(|r| table.contains_key(*r)) {
                    let set = refs
                        .iter()
                        .flat_map(|r| table[*r].iter().cloned())
                        .collect();
                    table.insert(c.name.clone(), set);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Unresolved cycles: conservative, everything.
        for c in &compound {
            table
                .entry(c.name.clone())
                .or_insert_with(|| primitives.clone());
        }
        out.insert(
            ty.to_string(),
            MaskInfo {
                primitives,
                consts: table,
            },
        );
    }
    out
}

/// Annotations attached to the fn whose name token sits on `fn_line`: the
/// annotation ends within the 4 lines above (attributes may intervene).
fn find_anns_for_fn(anns: &mut [PlaneAnn], fn_line: u32) -> impl Iterator<Item = &mut PlaneAnn> {
    anns.iter_mut()
        .filter(move |a| a.malformed.is_none() && a.line < fn_line && fn_line - a.line <= 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::struct_defs;
    use crate::parser::parse;
    use crate::rules::parse_plane_anns;

    fn sem_file(path: &str, src: &str) -> (SemFile, Vec<PlaneAnn>) {
        let lexed = lex(src);
        (
            SemFile {
                path: path.to_string(),
                result_crate: true,
                parsed: parse(&lexed.tokens),
                structs: struct_defs(&lexed.tokens),
            },
            parse_plane_anns(&lexed.comments),
        )
    }

    /// A miniature Socket: mask type, audited struct, restore path that
    /// teaches the field→plane map, and a mix of marking styles.
    const MINI: &str = r#"
pub struct Mask(pub u16);
impl Mask {
    pub const NONE: Mask = Mask(0);
    pub const MSR: Mask = Mask(1 << 0);
    pub const WORK: Mask = Mask(1 << 1);
    pub const ALL: Mask = Mask(0x3);
}
pub struct Sock {
    msr: u64,
    threads: u32,
    dirty: Mask,
}
impl Sock {
    fn restore_planes(&mut self, planes: Mask) {
        if planes.intersects(Mask::MSR) {
            self.msr = 0;
        }
        if planes.intersects(Mask::WORK) {
            self.threads = 0;
        }
        self.dirty = Mask(self.dirty.0 & !planes.0);
    }
    pub fn good(&mut self) {
        self.msr += 1;
        self.dirty |= Mask::MSR;
    }
    pub fn via_choke(&mut self) {
        self.threads = 4;
        self.mark_work();
    }
    fn mark_work(&mut self) {
        self.dirty |= Mask::WORK;
    }
}
"#;

    fn check(src: &str) -> Vec<Finding> {
        let (f, anns) = sem_file("crates/node/src/sock.rs", src);
        let files = vec![f];
        let sem = Semantic::build(&files);
        let mut anns = vec![anns];
        let mut out = sem.check_m6(&mut anns);
        out.extend(sem.validate_ann_names(&anns));
        out
    }

    #[test]
    fn marked_and_choke_point_methods_are_clean() {
        assert_eq!(check(MINI), Vec::new());
    }

    #[test]
    fn unmarked_mutation_is_flagged_with_its_plane() {
        let src =
            format!("{MINI}\nimpl Sock {{\n    pub fn bad(&mut self) {{ self.msr = 7; }}\n}}\n");
        let f = check(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M6");
        assert!(f[0]
            .message
            .contains("`Sock::bad` mutates `msr` (plane MSR)"));
        assert!(f[0].byte > 0, "span attached");
    }

    #[test]
    fn deleting_a_mark_breaks_the_method_that_held_it() {
        let broken = MINI.replace("self.dirty |= Mask::MSR;", "");
        let f = check(&broken);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`Sock::good`"));
    }

    #[test]
    fn plane_annotation_covers_and_unknown_plane_is_a1() {
        let src = format!(
            "{MINI}\nimpl Sock {{\n    // plane:dirty(MSR): caller batches marks\n    \
             pub fn annotated(&mut self) {{ self.msr = 7; }}\n}}\n"
        );
        assert_eq!(check(&src), Vec::new());

        let src = format!(
            "{MINI}\nimpl Sock {{\n    // plane:dirty(BOGUS): nope\n    \
             pub fn annotated(&mut self) {{ self.msr = 7; }}\n}}\n"
        );
        let f = check(&src);
        assert!(
            f.iter()
                .any(|f| f.rule == "A1" && f.message.contains("BOGUS")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|f| f.rule == "M6"),
            "annotation covered nothing: {f:?}"
        );
    }

    #[test]
    fn private_helper_covered_by_all_callers_passes() {
        let src = format!(
            "{MINI}\nimpl Sock {{\n    fn poke(&mut self) {{ self.msr = 1; }}\n    \
             pub fn outer(&mut self) {{ self.dirty |= Mask::MSR; self.poke(); }}\n}}\n"
        );
        assert_eq!(check(&src), Vec::new());

        // A pub method gets no such leniency.
        let src = format!(
            "{MINI}\nimpl Sock {{\n    pub fn poke(&mut self) {{ self.msr = 1; }}\n    \
             pub fn outer(&mut self) {{ self.dirty |= Mask::MSR; self.poke(); }}\n}}\n"
        );
        let f = check(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("poke"));
    }

    #[test]
    fn dynamic_mask_or_assignment_counts_as_full_coverage() {
        let src = format!(
            "{MINI}\nimpl Sock {{\n    \
             pub fn planes_mut(&mut self, planes: Mask) -> &mut Sock {{\n        \
                 self.dirty |= planes;\n        self.msr = 1;\n        self.threads = 2;\n        \
                 self\n    }}\n    \
             pub fn reset_all(&mut self) {{ self.dirty = Mask::ALL; self.msr = 0; }}\n}}\n"
        );
        assert_eq!(check(&src), Vec::new());
    }

    #[test]
    fn p1_flags_only_reachable_panic_sites() {
        let src = r#"
pub struct Sock;
impl Sock {
    pub fn tick(&mut self) {
        self.inner();
        helper();
    }
    fn inner(&self) {
        self.cache.get(0).expect("stale");
    }
}
fn helper() {
    let v = vec![1];
    let x = v[i + 1];
}
fn unreached() {
    opt.unwrap();
}
"#;
        let lexed = lex(src);
        let files = vec![SemFile {
            path: "crates/node/src/sock.rs".to_string(),
            result_crate: true,
            parsed: parse(&lexed.tokens),
            structs: struct_defs(&lexed.tokens),
        }];
        let sem = Semantic::build(&files);
        let f = sem.check_p1(&[("Sock", "tick")]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|f| f.message.contains("`.expect()` in `inner`")));
        assert!(f
            .iter()
            .any(|f| f.message.contains("computed index in `helper`")));
        assert!(!f.iter().any(|f| f.message.contains("unreached")));
    }

    #[test]
    fn composite_consts_expand_to_their_union() {
        let src = r#"
pub struct Mask(pub u16);
impl Mask {
    pub const MSR: Mask = Mask(1 << 0);
    pub const WORK: Mask = Mask(1 << 1);
    pub const LOG: Mask = Mask(1 << 2);
}
pub const TICK: Mask = Mask::MSR.union(Mask::WORK);
pub struct Sock { msr: u64, threads: u32, log: u32, dirty: Mask }
impl Sock {
    fn restore_planes(&mut self, planes: Mask) {
        if planes.intersects(Mask::MSR) { self.msr = 0; }
        if planes.intersects(Mask::WORK) { self.threads = 0; }
        if planes.intersects(Mask::LOG) { self.log = 0; }
        self.dirty = Mask(0);
    }
    pub fn tick(&mut self) {
        self.msr = 1;
        self.threads = 2;
        self.dirty |= TICK;
    }
}
"#;
        let (f, _) = sem_file("crates/node/src/sock.rs", src);
        let files = vec![f];
        let sem = Semantic::build(&files);
        let mut anns = vec![Vec::new()];
        assert_eq!(sem.check_m6(&mut anns), Vec::new());

        // …but TICK does not cover LOG.
        let broken = src.replace("self.threads = 2;", "self.log = 9;");
        let (f, _) = sem_file("crates/node/src/sock.rs", &broken);
        let files = vec![f];
        let sem = Semantic::build(&files);
        let out = sem.check_m6(&mut anns);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("plane LOG"));
    }

    /// The acceptance gate for M6 against the production source it exists
    /// to guard: delete each `self.dirty |= …` mark from the *real*
    /// `socket.rs` in turn and assert the rule catches every one. The sole
    /// exception is `planes_mut`, whose mark is its entire body — a method
    /// that mutates nothing else has nothing for M6 to see; its contract
    /// is pinned by the runtime fork/restore tests instead.
    #[test]
    fn deleting_any_real_socket_mark_is_caught() {
        let root =
            crate::workspace::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
                .expect("lint crate lives inside the workspace");
        let src = std::fs::read_to_string(root.join("crates/node/src/socket.rs"))
            .expect("read socket.rs");

        // Full workspace file set: some socket mutations go through methods
        // of other crates (`MsrBank::store`), whose `&mut self`-ness the
        // model learns from their defining files.
        let targets = crate::workspace::scan_targets(&root).expect("scan workspace");
        let m6_of = |source: &str| -> Vec<Finding> {
            let mut files = Vec::new();
            let mut anns = Vec::new();
            for (rel, abs) in &targets {
                let src = if rel == "crates/node/src/socket.rs" {
                    source.to_string()
                } else {
                    std::fs::read_to_string(abs).expect("read workspace file")
                };
                let (f, a) = sem_file(rel, &src);
                files.push(f);
                anns.push(a);
            }
            let sem = Semantic::build(&files);
            sem.check_m6(&mut anns)
        };
        assert_eq!(m6_of(&src), Vec::new(), "pristine socket.rs must be clean");

        let lines: Vec<&str> = src.lines().collect();
        let mark_lines: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                l.trim_start().starts_with("self.dirty |=")
                    && !lines[i.saturating_sub(3)..*i]
                        .iter()
                        .any(|p| p.contains("fn planes_mut"))
            })
            .map(|(i, _)| i)
            .collect();
        assert!(
            mark_lines.len() >= 10,
            "expected the full complement of marks, found {}",
            mark_lines.len()
        );
        for &ml in &mark_lines {
            let mutated = lines
                .iter()
                .enumerate()
                .map(|(i, l)| if i == ml { "" } else { l })
                .collect::<Vec<_>>()
                .join("\n");
            let findings = m6_of(&mutated);
            assert!(
                !findings.is_empty(),
                "deleting the mark at socket.rs:{} went undetected",
                ml + 1
            );
            assert!(findings.iter().all(|f| f.rule == "M6"), "{findings:?}");
        }
    }
}
