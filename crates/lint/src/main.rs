//! The `hsw-lint` binary: lint the workspace (or a single file), print
//! `path:line: rule: message` findings, exit nonzero on any.

use std::path::PathBuf;
use std::process::ExitCode;

use hsw_lint::{
    find_workspace_root, findings_to_json, lint_workspace, lint_workspace_uncached, rules,
    FileScope, Finding,
};

const USAGE: &str = "\
hsw-lint — determinism-contract and MSR-model static analysis

USAGE:
    hsw-lint [--root <dir>] [--json] [--no-cache]
    hsw-lint --check-file <file.rs> [--json]

OPTIONS:
    --root <dir>        Workspace root (default: walk up from cwd to the
                        directory whose Cargo.toml declares [workspace])
    --check-file <f>    Lint one file with the full tier-1 rule set
                        (treated as a result-producing crate)
    --json              Emit findings as a JSON array instead of text
                        (objects carry byte/len spans for editor tooling)
    --no-cache          Skip the content-hash cache in target/ and rescan
                        every file (the cache self-invalidates on change;
                        this flag exists for debugging it)
    -h, --help          This text

RULES:
    D1  no Instant::now/SystemTime/thread_rng/rand::random in result crates
    D2  no HashMap/HashSet in result crates (use BTreeMap/BTreeSet)
    D3  no float reductions over parallel sources in result crates, and no
        partial_cmp().unwrap() comparators (use f64::total_cmp)
    S1  every `unsafe` needs a preceding `// SAFETY:` comment
    A1  malformed `// lint:allow(…)` or `// plane:dirty(…)` directive,
        or a plane:dirty naming an unknown plane
    A2  stale directives: a justified lint:allow, snap:skip, or plane:dirty
        that no longer suppresses/declares anything must be deleted
    M1  gate allowlist addresses are named in addresses.rs and unique
    M2  fields.rs encode/decode shift/mask pairs consistent, within 64 bits
    M3  every experiments/* module registered in the registry, ids unique
    M5  no match/if-let/matches! on CpuGeneration outside hwspec's policy layer
    M6  every `&mut self` method of a plane-tracked type (Socket) that
        mutates plane-mapped state must mark it dirty — directly, through a
        marking method, or via `// plane:dirty(<MASK>): <why>`
    P1  no .unwrap()/.expect()/computed indexing in result-crate code
        reachable from Socket::tick / Node::step (a panic there poisons
        every sweep point sharing the worker pool)

Suppress a finding with `// lint:allow(rule): <why this is sound>` on the
same line or the line above. Unjustified allows suppress nothing, and
allows that no longer match a finding rot into A2.
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json = false;
    let mut no_cache = false;
    let mut root: Option<PathBuf> = None;
    let mut check_file: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--no-cache" => no_cache = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--check-file" => check_file = args.next().map(PathBuf::from),
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hsw-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let findings: Vec<Finding> = if let Some(file) = check_file {
        let src = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hsw-lint: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        rules::scan_file(
            &file.display().to_string(),
            &src,
            FileScope {
                result_crate: true,
                generation_policy: false,
            },
        )
    } else {
        let root = match root.or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("hsw-lint: no workspace root found (pass --root)");
                return ExitCode::from(2);
            }
        };
        let scan = if no_cache {
            lint_workspace_uncached(&root)
        } else {
            lint_workspace(&root)
        };
        match scan {
            Ok(f) => f,
            Err(e) => {
                eprintln!("hsw-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    };

    if json {
        print!("{}", findings_to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("hsw-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("hsw-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
