//! Workspace discovery: which files to scan and under which rule scope,
//! the tier-2 wiring to the MSR model's concrete files, the semantic
//! tier (M6/P1), central suppression with stale-directive detection
//! (A2), and the content-hash cache that keeps the full run fast in CI.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::model::{self, ExperimentModule};
use crate::parser;
use crate::rules::{self, FileScope, Finding, KNOWN_RULES};
use crate::semantic::{SemFile, Semantic};

/// Call-graph roots for the P1 panic-path audit: the per-tick entry
/// points whose transitive callees run once per simulated millisecond
/// per sweep point.
const P1_ROOTS: &[(&str, &str)] = &[("Socket", "tick"), ("Node", "step")];

/// Bump to invalidate caches when rule behavior changes.
const RULES_REV: u32 = 1;

/// Crates whose output feeds `survey.json` (directly or through the node
/// model); D1/D2 apply in full. `tools` drives interactive binaries,
/// `bench` measures wall time by design, and `shims/` vendors external
/// API surfaces — all exempt from D1/D2, but S1 still applies everywhere.
pub const RESULT_CRATES: &[&str] = &[
    "analytic", "core", "cstates", "exec", "fleet", "hwspec", "memhier", "msr", "node", "pcu",
    "power",
];

/// Directories whose `.rs` files are scanned, relative to the root.
const SCAN_DIRS: &[&str] = &["crates", "shims", "src", "tests"];

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect every `.rs` file to scan, sorted, as (relative path, absolute
/// path). Skips `target/`, hidden directories, and lint-test `fixtures/`
/// corpora (deliberately-bad sources).
pub(crate) fn scan_targets(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            walk(&abs, &mut files)?;
        }
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            (rel, p)
        })
        .collect();
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// The rule scope of one workspace-relative path.
pub fn scope_of(rel_path: &str) -> FileScope {
    let result_crate = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|krate| RESULT_CRATES.contains(&krate))
        .unwrap_or(false);
    // hwspec is the generation-policy home: its spec tables and the
    // `FirmwarePolicy` dispatch are the one sanctioned place to branch on
    // `CpuGeneration` (M5).
    let generation_policy = rel_path.starts_with("crates/hwspec/");
    FileScope {
        result_crate,
        generation_policy,
    }
}

/// Run every rule over the workspace at `root`; findings come back sorted
/// by (path, line, rule). Uses the on-disk cache (see [`cache`]).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_opts(root, true)
}

/// [`lint_workspace`] with the cache disabled — the reference path the
/// cache determinism test compares against.
pub fn lint_workspace_uncached(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_opts(root, false)
}

fn lint_workspace_opts(root: &Path, use_cache: bool) -> io::Result<Vec<Finding>> {
    // Read every scanned file once; everything below works off this set.
    let mut sources: Vec<(String, String)> = Vec::new();
    for (rel, abs) in scan_targets(root)? {
        sources.push((rel, fs::read_to_string(&abs)?));
    }

    let hashes: Vec<u64> = sources
        .iter()
        .map(|(_, src)| fnv1a(src.as_bytes()))
        .collect();
    let full_digest = {
        let mut acc = format!("rev={RULES_REV}");
        for ((rel, _), h) in sources.iter().zip(&hashes) {
            acc.push_str(rel);
            acc.push_str(&format!(":{h:016x};"));
        }
        fnv1a(acc.as_bytes())
    };
    let cached = if use_cache { cache::load(root) } else { None };
    if let Some(c) = &cached {
        // Nothing changed since the last full run: replay its findings.
        if c.full_digest == full_digest {
            return Ok(c.findings.clone());
        }
    }

    let mut raw = Vec::new();
    let mut allows = Vec::new();
    let mut anns = Vec::new();
    let mut markers = Vec::new();
    let mut sem_files = Vec::new();
    let mut tier1_per_file: Vec<Vec<Finding>> = Vec::new();
    for ((rel, src), &hash) in sources.iter().zip(&hashes) {
        let lexed = lex(src);
        allows.push(rules::parse_allows(&lexed.comments));
        anns.push(rules::parse_plane_anns(&lexed.comments));
        markers.push(model::snap_skip_markers(&lexed.comments));
        let tier1 = cached
            .as_ref()
            .and_then(|c| c.tier1_for(rel, hash))
            .unwrap_or_else(|| rules::tier1_findings(rel, &lexed, scope_of(rel)));
        raw.extend(tier1.iter().cloned());
        tier1_per_file.push(tier1);
        sem_files.push(SemFile {
            path: rel.clone(),
            result_crate: scope_of(rel).result_crate,
            parsed: parser::parse(&lexed.tokens),
            structs: model::struct_defs(&lexed.tokens),
        });
    }

    let mut findings = Vec::new();
    if sources.is_empty() {
        findings.push(Finding::new(
            ".",
            1,
            "M1",
            "no Rust sources found under the workspace root — wrong --root?".to_string(),
        ));
    }

    // Tier 2: snapshot field coverage across every scanned file.
    let (m4, used_markers) = model::check_snapshots_with_usage(&sources);
    raw.extend(m4);

    // Tier 2: the MSR model's declarative surface.
    let read = |rel: &str| -> io::Result<String> { fs::read_to_string(root.join(rel)) };
    match (
        read("crates/msr/src/addresses.rs"),
        read("crates/msr/src/gate.rs"),
    ) {
        (Ok(addr), Ok(gate)) => raw.extend(model::check_addresses_and_gate(
            "crates/msr/src/addresses.rs",
            &addr,
            "crates/msr/src/gate.rs",
            &gate,
        )),
        _ => findings.push(Finding::new(
            "crates/msr/src",
            1,
            "M1",
            "addresses.rs/gate.rs not found — MSR model moved without updating hsw-lint"
                .to_string(),
        )),
    }
    match read("crates/msr/src/fields.rs") {
        Ok(fields) => raw.extend(model::check_fields("crates/msr/src/fields.rs", &fields)),
        Err(_) => findings.push(Finding::new(
            "crates/msr/src/fields.rs",
            1,
            "M2",
            "fields.rs not found — MSR model moved without updating hsw-lint".to_string(),
        )),
    }

    let exp_dir = root.join("crates/core/src/experiments");
    match (
        read("crates/core/src/experiments/mod.rs"),
        read("crates/core/src/survey.rs"),
        fs::read_dir(&exp_dir),
    ) {
        (Ok(mod_src), Ok(survey_src), Ok(dir)) => {
            let mut modules: Vec<(String, String, String)> = Vec::new();
            let mut names: Vec<String> = dir
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    name.strip_suffix(".rs")
                        .filter(|stem| *stem != "mod")
                        .map(str::to_string)
                })
                .collect();
            names.sort();
            for name in names {
                let rel = format!("crates/core/src/experiments/{name}.rs");
                let src = read(&rel)?;
                modules.push((name, rel, src));
            }
            let mods: Vec<ExperimentModule<'_>> = modules
                .iter()
                .map(|(name, path, src)| ExperimentModule { name, path, src })
                .collect();
            raw.extend(model::check_registry(
                "crates/core/src/experiments/mod.rs",
                &mod_src,
                "crates/core/src/survey.rs",
                &survey_src,
                &mods,
            ));
        }
        _ => findings.push(Finding::new(
            "crates/core/src/experiments",
            1,
            "M3",
            "experiments/mod.rs or survey.rs not found — registry moved without updating hsw-lint"
                .to_string(),
        )),
    }

    // Tier 3: the semantic model — M6 dirty-plane coverage and the P1
    // panic-path audit. `check_m6` also marks which `plane:dirty`
    // annotations actually covered something.
    let sem = Semantic::build(&sem_files);
    raw.extend(sem.check_m6(&mut anns));
    raw.extend(sem.check_p1(P1_ROOTS));
    findings.extend(sem.validate_ann_names(&anns));

    // Central suppression: justified allows remove findings of their rule
    // on their line or the line below, and get marked used.
    let file_index: BTreeMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| (rel.as_str(), i))
        .collect();
    raw.retain(|f| {
        let Some(&fi) = file_index.get(f.path.as_str()) else {
            return true;
        };
        let mut hit = false;
        for a in allows[fi].iter_mut() {
            if a.justified && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                hit = true;
            }
        }
        !hit
    });
    findings.extend(raw);

    // A1 (malformed directives) and A2 (stale suppressions) — never
    // themselves suppressible.
    for (fi, (rel, _)) in sources.iter().enumerate() {
        findings.extend(rules::directive_findings(rel, &allows[fi], &anns[fi]));
        for a in &allows[fi] {
            if a.justified && KNOWN_RULES.contains(&a.rule.as_str()) && !a.used {
                findings.push(
                    Finding::new(
                        rel,
                        a.line,
                        "A2",
                        format!(
                            "lint:allow({}) suppresses nothing — the finding it once \
                             silenced is gone; delete the stale directive",
                            a.rule
                        ),
                    )
                    .with_span(a.byte, a.len),
                );
            }
        }
        for m in &markers[fi] {
            if m.justified && !used_markers.contains(&(fi, m.end_line)) {
                findings.push(Finding::new(
                    rel,
                    m.end_line,
                    "A2",
                    "snap:skip marks nothing — no snapshot-missing field sits on the \
                     line below; the field was captured, renamed, or removed; delete \
                     the stale marker"
                        .to_string(),
                ));
            }
        }
        for ann in &anns[fi] {
            if ann.malformed.is_none() && !ann.used {
                findings.push(
                    Finding::new(
                        rel,
                        ann.line,
                        "A2",
                        "plane:dirty covers nothing — every plane the method mutates \
                         is already marked (or the annotation is not attached to a \
                         `&mut self` method); delete the stale annotation"
                            .to_string(),
                    )
                    .with_span(ann.byte, ann.len),
                );
            }
        }
    }

    findings.sort();
    findings.dedup();
    if use_cache {
        cache::store(
            root,
            full_digest,
            &sources,
            &hashes,
            &tier1_per_file,
            &findings,
        );
    }
    Ok(findings)
}

/// FNV-1a 64-bit — stable, dependency-free content hash for the cache.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The on-disk cache: `target/hsw-lint-cache.tsv`, a tab-separated text
/// format (no serde in this crate). Two levels: a whole-workspace digest
/// that replays the previous run's findings when nothing changed, and
/// per-file content hashes that skip tier-1 rule evaluation for
/// unchanged files (the semantic tier is workspace-global and always
/// recomputed). All IO is best-effort: a missing, stale, or corrupt
/// cache only costs a full run.
mod cache {
    use super::{fnv1a, Finding, RULES_REV};
    use std::collections::BTreeMap;
    use std::fs;
    use std::path::Path;

    pub(super) struct Cache {
        pub full_digest: u64,
        pub findings: Vec<Finding>,
        /// rel path → (content hash, tier-1 findings).
        files: BTreeMap<String, (u64, Vec<Finding>)>,
    }

    impl Cache {
        pub fn tier1_for(&self, rel: &str, hash: u64) -> Option<Vec<Finding>> {
            self.files
                .get(rel)
                .filter(|(h, _)| *h == hash)
                .map(|(_, f)| f.clone())
        }
    }

    fn cache_path(root: &Path) -> std::path::PathBuf {
        root.join("target/hsw-lint-cache.tsv")
    }

    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\")
            .replace('\t', "\\t")
            .replace('\n', "\\n")
    }

    fn unesc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => break,
            }
        }
        out
    }

    fn write_finding(out: &mut String, tag: &str, f: &Finding) {
        out.push_str(&format!(
            "{tag}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(&f.path),
            f.line,
            f.rule,
            f.byte,
            f.len,
            esc(&f.message)
        ));
    }

    fn read_finding(line: &str, tag: &str) -> Option<Finding> {
        let mut parts = line.split('\t');
        if parts.next() != Some(tag) {
            return None;
        }
        let path = unesc(parts.next()?);
        let lineno: u32 = parts.next()?.parse().ok()?;
        // `rule` must map back to a `&'static str` the engine knows.
        let rule = *super::KNOWN_RULES
            .iter()
            .find(|r| **r == parts.next().unwrap_or(""))?;
        let byte: u32 = parts.next()?.parse().ok()?;
        let len: u32 = parts.next()?.parse().ok()?;
        let message = unesc(&parts.collect::<Vec<_>>().join("\t"));
        Some(Finding::new(&path, lineno, rule, message).with_span(byte, len))
    }

    pub(super) fn load(root: &Path) -> Option<Cache> {
        let text = fs::read_to_string(cache_path(root)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != format!("hsw-lint-cache v1 rev {RULES_REV}") {
            return None;
        }
        let full_digest = u64::from_str_radix(lines.next()?.strip_prefix("full ")?, 16).ok()?;
        let mut findings = Vec::new();
        let mut files: BTreeMap<String, (u64, Vec<Finding>)> = BTreeMap::new();
        let mut current: Option<String> = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("file\t") {
                let mut parts = rest.split('\t');
                let rel = unesc(parts.next()?);
                let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                files.insert(rel.clone(), (hash, Vec::new()));
                current = Some(rel);
            } else if line.starts_with("t\t") {
                let f = read_finding(line, "t")?;
                files.get_mut(current.as_ref()?)?.1.push(f);
            } else if line.starts_with("f\t") {
                findings.push(read_finding(line, "f")?);
            } else if !line.is_empty() {
                return None; // unknown record: treat the cache as corrupt
            }
        }
        Some(Cache {
            full_digest,
            findings,
            files,
        })
    }

    pub(super) fn store(
        root: &Path,
        full_digest: u64,
        sources: &[(String, String)],
        hashes: &[u64],
        tier1_per_file: &[Vec<Finding>],
        findings: &[Finding],
    ) {
        let mut out = format!("hsw-lint-cache v1 rev {RULES_REV}\nfull {full_digest:016x}\n");
        for (i, (rel, _)) in sources.iter().enumerate() {
            out.push_str(&format!("file\t{}\t{:016x}\n", esc(rel), hashes[i]));
            for f in &tier1_per_file[i] {
                write_finding(&mut out, "t", f);
            }
        }
        for f in findings {
            write_finding(&mut out, "f", f);
        }
        // Atomic, best-effort: a failed write only costs the next run.
        let path = cache_path(root);
        let tmp = path.with_extension("tsv.tmp");
        if path.parent().is_some_and(|d| fs::create_dir_all(d).is_ok())
            && fs::write(&tmp, &out).is_ok()
        {
            let _ = fs::rename(&tmp, &path);
        }
        // Self-check that the digest layout round-trips (fnv1a is also
        // exercised by the determinism test).
        debug_assert!(fnv1a(b"") == 0xcbf2_9ce4_8422_2325);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_crate_scoping() {
        assert!(scope_of("crates/msr/src/gate.rs").result_crate);
        assert!(scope_of("crates/core/src/survey.rs").result_crate);
        assert!(scope_of("crates/fleet/src/variation.rs").result_crate);
        assert!(scope_of("crates/analytic/src/model.rs").result_crate);
        assert!(!scope_of("crates/bench/src/lib.rs").result_crate);
        assert!(!scope_of("crates/tools/src/stress.rs").result_crate);
        assert!(!scope_of("shims/rayon/src/pool.rs").result_crate);
        assert!(!scope_of("src/bin/survey.rs").result_crate);
        assert!(!scope_of("tests/sweep_determinism.rs").result_crate);
    }

    #[test]
    fn the_workspace_itself_is_lint_clean() {
        // The acceptance gate of the whole rule set: the repo this crate
        // lives in passes its own lint with zero findings. (Same check CI
        // runs via `cargo run -p hsw-lint --release`.)
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("lint crate lives inside the workspace");
        let findings = lint_workspace(&root).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        // The cache is a pure replay: a cold run, a warm (full-digest hit)
        // run, and a cache-bypassing run must produce identical findings.
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let cold = lint_workspace(&root).expect("cold scan");
        let warm = lint_workspace(&root).expect("warm scan");
        let bypass = lint_workspace_uncached(&root).expect("uncached scan");
        assert_eq!(cold, warm, "cache replay diverged from its own write");
        assert_eq!(warm, bypass, "cache contents diverged from a live scan");
    }

    #[test]
    fn no_workspace_file_panics_the_linter() {
        // Every tier (lexer, textual rules, parser) over every scanned
        // file, one at a time, so a panic names its file instead of dying
        // inside the workspace pass.
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        for (rel, abs) in scan_targets(&root).expect("scan") {
            let src = fs::read_to_string(&abs).expect("read");
            let r = std::panic::catch_unwind(|| {
                let lexed = lex(&src);
                rules::scan_file(&rel, &src, scope_of(&rel));
                parser::parse(&lexed.tokens);
                model::struct_defs(&lexed.tokens);
            });
            assert!(r.is_ok(), "linter panicked on {rel}");
        }
    }

    #[test]
    fn stale_suppressions_are_a2_on_a_synthetic_root() {
        // A justified allow for a finding that no longer exists, and a
        // well-formed plane annotation covering nothing, must both rot
        // into A2 findings; a *working* allow must not.
        let dir = std::env::temp_dir().join(format!("hsw-lint-a2-{}", std::process::id()));
        let src_dir = dir.join("crates/core/src");
        fs::create_dir_all(&src_dir).expect("mkdir");
        fs::write(
            src_dir.join("lib.rs"),
            "// lint:allow(D1): stale — the Instant::now this silenced is long gone\n\
             fn quiet() {}\n\
             // lint:allow(D2): live — suppresses the map below\n\
             fn live() { let m = HashMap::new(); }\n\
             // plane:dirty(MSR): covers nothing here\n\
             fn unannotated() {}\n",
        )
        .expect("write fixture");

        let findings = lint_workspace_uncached(&dir).expect("scan synthetic root");
        let a2: Vec<_> = findings.iter().filter(|f| f.rule == "A2").collect();
        assert!(
            a2.iter()
                .any(|f| f.line == 1 && f.message.contains("lint:allow(D1)")),
            "stale allow not flagged: {findings:?}"
        );
        assert!(
            a2.iter().any(|f| f.message.contains("plane:dirty")),
            "stale plane annotation not flagged: {findings:?}"
        );
        assert!(
            !findings
                .iter()
                .any(|f| f.rule == "D2" || (f.rule == "A2" && f.line == 3)),
            "the live allow should suppress and not be stale: {findings:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
