//! Workspace discovery: which files to scan and under which rule scope,
//! plus the tier-2 wiring to the MSR model's concrete files.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::model::{self, ExperimentModule};
use crate::rules::{scan_file, FileScope, Finding};

/// Crates whose output feeds `survey.json` (directly or through the node
/// model); D1/D2 apply in full. `tools` drives interactive binaries,
/// `bench` measures wall time by design, and `shims/` vendors external
/// API surfaces — all exempt from D1/D2, but S1 still applies everywhere.
pub const RESULT_CRATES: &[&str] = &[
    "core", "cstates", "exec", "fleet", "hwspec", "memhier", "msr", "node", "pcu", "power",
];

/// Directories whose `.rs` files are scanned, relative to the root.
const SCAN_DIRS: &[&str] = &["crates", "shims", "src", "tests"];

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect every `.rs` file to scan, sorted, as (relative path, absolute
/// path). Skips `target/`, hidden directories, and lint-test `fixtures/`
/// corpora (deliberately-bad sources).
fn scan_targets(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let abs = root.join(dir);
        if abs.is_dir() {
            walk(&abs, &mut files)?;
        }
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            (rel, p)
        })
        .collect();
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// The rule scope of one workspace-relative path.
pub fn scope_of(rel_path: &str) -> FileScope {
    let result_crate = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|krate| RESULT_CRATES.contains(&krate))
        .unwrap_or(false);
    // hwspec is the generation-policy home: its spec tables and the
    // `FirmwarePolicy` dispatch are the one sanctioned place to branch on
    // `CpuGeneration` (M5).
    let generation_policy = rel_path.starts_with("crates/hwspec/");
    FileScope {
        result_crate,
        generation_policy,
    }
}

/// Run every rule over the workspace at `root`; findings come back sorted
/// by (path, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // Tier 1: textual rules over every scanned file. Sources are retained
    // (path-sorted) because M4 resolves snapshot/source struct pairs
    // across the whole scan set.
    let mut sources: Vec<(String, String)> = Vec::new();
    for (rel, abs) in scan_targets(root)? {
        let src = fs::read_to_string(&abs)?;
        findings.extend(scan_file(&rel, &src, scope_of(&rel)));
        sources.push((rel, src));
    }
    if sources.is_empty() {
        findings.push(Finding::new(
            ".",
            1,
            "M1",
            "no Rust sources found under the workspace root — wrong --root?".to_string(),
        ));
    }

    // Tier 2: snapshot field coverage across every scanned file.
    findings.extend(model::check_snapshots(&sources));

    // Tier 2: the MSR model's declarative surface.
    let read = |rel: &str| -> io::Result<String> { fs::read_to_string(root.join(rel)) };
    match (
        read("crates/msr/src/addresses.rs"),
        read("crates/msr/src/gate.rs"),
    ) {
        (Ok(addr), Ok(gate)) => findings.extend(model::check_addresses_and_gate(
            "crates/msr/src/addresses.rs",
            &addr,
            "crates/msr/src/gate.rs",
            &gate,
        )),
        _ => findings.push(Finding::new(
            "crates/msr/src",
            1,
            "M1",
            "addresses.rs/gate.rs not found — MSR model moved without updating hsw-lint"
                .to_string(),
        )),
    }
    match read("crates/msr/src/fields.rs") {
        Ok(fields) => findings.extend(model::check_fields("crates/msr/src/fields.rs", &fields)),
        Err(_) => findings.push(Finding::new(
            "crates/msr/src/fields.rs",
            1,
            "M2",
            "fields.rs not found — MSR model moved without updating hsw-lint".to_string(),
        )),
    }

    let exp_dir = root.join("crates/core/src/experiments");
    match (
        read("crates/core/src/experiments/mod.rs"),
        read("crates/core/src/survey.rs"),
        fs::read_dir(&exp_dir),
    ) {
        (Ok(mod_src), Ok(survey_src), Ok(dir)) => {
            let mut modules: Vec<(String, String, String)> = Vec::new();
            let mut names: Vec<String> = dir
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    name.strip_suffix(".rs")
                        .filter(|stem| *stem != "mod")
                        .map(str::to_string)
                })
                .collect();
            names.sort();
            for name in names {
                let rel = format!("crates/core/src/experiments/{name}.rs");
                let src = read(&rel)?;
                modules.push((name, rel, src));
            }
            let mods: Vec<ExperimentModule<'_>> = modules
                .iter()
                .map(|(name, path, src)| ExperimentModule { name, path, src })
                .collect();
            findings.extend(model::check_registry(
                "crates/core/src/experiments/mod.rs",
                &mod_src,
                "crates/core/src/survey.rs",
                &survey_src,
                &mods,
            ));
        }
        _ => findings.push(Finding::new(
            "crates/core/src/experiments",
            1,
            "M3",
            "experiments/mod.rs or survey.rs not found — registry moved without updating hsw-lint"
                .to_string(),
        )),
    }

    findings.sort();
    findings.dedup();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_crate_scoping() {
        assert!(scope_of("crates/msr/src/gate.rs").result_crate);
        assert!(scope_of("crates/core/src/survey.rs").result_crate);
        assert!(scope_of("crates/fleet/src/variation.rs").result_crate);
        assert!(!scope_of("crates/bench/src/lib.rs").result_crate);
        assert!(!scope_of("crates/tools/src/stress.rs").result_crate);
        assert!(!scope_of("shims/rayon/src/pool.rs").result_crate);
        assert!(!scope_of("src/bin/survey.rs").result_crate);
        assert!(!scope_of("tests/sweep_determinism.rs").result_crate);
    }

    #[test]
    fn the_workspace_itself_is_lint_clean() {
        // The acceptance gate of the whole rule set: the repo this crate
        // lives in passes its own lint with zero findings. (Same check CI
        // runs via `cargo run -p hsw-lint --release`.)
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("lint crate lives inside the workspace");
        let findings = lint_workspace(&root).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
