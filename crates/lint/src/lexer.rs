//! A token-level Rust lexer — just enough syntax to lint safely.
//!
//! The build environment has no crates.io access, so there is no `syn` to
//! lean on. What the rules actually need is far less than a parse tree:
//! identifiers, literals and punctuation with line numbers, with comments
//! kept *separately* (for `SAFETY:` and `lint:allow` detection) and the
//! contents of string/raw-string/char literals never mistaken for code.
//! Mis-lexing a literal is the classic false-positive source for textual
//! linters (`"HashMap"` inside a string, `//` inside a raw string), so the
//! literal forms get full treatment: escapes, raw strings with any number
//! of `#`s, byte strings, nested block comments, and the char-literal vs.
//! lifetime ambiguity.

/// One code token. Comments are not tokens; see [`Comment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character in the source.
    pub byte: u32,
    /// Byte length of the token's source text.
    pub len: u32,
    pub kind: TokenKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    /// Integer literal with its parsed value (suffix stripped, `_` ignored).
    Int(u128),
    /// Float or unparseable numeric literal — carried but valueless.
    Float,
    /// String / raw-string / byte-string literal contents.
    Str(String),
    /// Char or byte-char literal.
    Char,
    /// Lifetime or loop label (`'a`, `'scope`).
    Lifetime,
    /// Punctuation; multi-char operators (`::`, `<<`, `>>`, …) are joined.
    Punct(&'static str),
    /// Punctuation not in the joined-operator table.
    OtherPunct(char),
}

/// One comment (line or block). A `///` doc comment is a comment too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Byte offset of the comment's opening delimiter in the source.
    pub byte: u32,
    /// Byte length of the comment's source text, delimiters included.
    pub len: u32,
    /// Text without the delimiters, trimmed.
    pub text: String,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators joined into a single [`TokenKind::Punct`], longest
/// first so `<<=` wins over `<<`.
const JOINED: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "<<", ">>", "->", "=>", "&&", "||", "==", "!=", "<=", ">=",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "..",
];

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    // Prefix byte offsets so token spans can be reported in bytes (what
    // editors and `--json` consumers address) while the lexer itself keeps
    // walking chars.
    let mut byte_of: Vec<u32> = Vec::with_capacity(chars.len() + 1);
    let mut b = 0u32;
    for c in &chars {
        byte_of.push(b);
        b += c.len_utf8() as u32;
    }
    byte_of.push(b);
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| chars.get(i).copied();

    while i < chars.len() {
        let c = chars[i];
        let tok_byte = byte_of[i];
        let ntok = out.tokens.len();
        let ncom = out.comments.len();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    byte: 0,
                    len: 0,
                    text: text.trim().to_string(),
                });
            }
            '/' if at(i + 1) == Some('*') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && at(i + 1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && at(i + 1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text: String = chars[start..end].iter().collect();
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    byte: 0,
                    len: 0,
                    text: text.trim().to_string(),
                });
            }
            '"' => {
                let (s, ni, nl) = lex_string(&chars, i, line);
                out.tokens.push(Token {
                    line,
                    byte: 0,
                    len: 0,
                    kind: TokenKind::Str(s),
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let (kind, ni, nl) = lex_prefixed_literal(&chars, i, line);
                out.tokens.push(Token {
                    line,
                    byte: 0,
                    len: 0,
                    kind,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                let (kind, ni, nl) = lex_quote(&chars, i, line);
                out.tokens.push(Token {
                    line,
                    byte: 0,
                    len: 0,
                    kind,
                });
                i = ni;
                line = nl;
            }
            c if c.is_ascii_digit() => {
                let (kind, ni) = lex_number(&chars, i);
                out.tokens.push(Token {
                    line,
                    byte: 0,
                    len: 0,
                    kind,
                });
                i = ni;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                out.tokens.push(Token {
                    line,
                    byte: 0,
                    len: 0,
                    kind: TokenKind::Ident(ident),
                });
            }
            _ => {
                if let Some(op) = JOINED
                    .iter()
                    .find(|op| chars[i..].iter().take(op.len()).collect::<String>() == **op)
                {
                    out.tokens.push(Token {
                        line,
                        byte: 0,
                        len: 0,
                        kind: TokenKind::Punct(op),
                    });
                    i += op.len();
                } else {
                    let kind = match c {
                        '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | ':' | '.' | '&' | '|'
                        | '^' | '!' | '<' | '>' | '=' | '+' | '-' | '*' | '/' | '%' | '#' | '?'
                        | '@' | '$' | '~' => TokenKind::Punct(single_punct(c)),
                        other => TokenKind::OtherPunct(other),
                    };
                    out.tokens.push(Token {
                        line,
                        byte: 0,
                        len: 0,
                        kind,
                    });
                    i += 1;
                }
            }
        }
        // Every branch consumes exactly the source of whatever it pushed,
        // so the token/comment emitted this iteration spans
        // [tok_byte, byte_of[i]).
        let end = byte_of[i];
        for t in &mut out.tokens[ntok..] {
            t.byte = tok_byte;
            t.len = end - tok_byte;
        }
        for cm in &mut out.comments[ncom..] {
            cm.byte = tok_byte;
            cm.len = end - tok_byte;
        }
    }
    out
}

/// The `&'static str` form of a single-char punct (so rules can match on
/// one string type for both joined and single operators).
fn single_punct(c: char) -> &'static str {
    match c {
        '(' => "(",
        ')' => ")",
        '[' => "[",
        ']' => "]",
        '{' => "{",
        '}' => "}",
        ';' => ";",
        ',' => ",",
        ':' => ":",
        '.' => ".",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '!' => "!",
        '<' => "<",
        '>' => ">",
        '=' => "=",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '#' => "#",
        '?' => "?",
        '@' => "@",
        '$' => "$",
        '~' => "~",
        _ => unreachable!("not a single punct"),
    }
}

/// Does position `i` (at `r` or `b`) start a raw string, byte string or raw
/// ident — anything needing prefixed-literal handling?
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let at = |k: usize| chars.get(k).copied();
    match chars[i] {
        'r' => matches!(at(i + 1), Some('"') | Some('#')),
        'b' => match at(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => matches!(at(i + 2), Some('"') | Some('#')),
            _ => false,
        },
        _ => false,
    }
}

/// Lex a literal starting with `r`/`b`: raw strings (`r"…"`, `r#"…"#`),
/// byte strings (`b"…"`, `br#"…"#`), byte chars (`b'…'`) and raw idents
/// (`r#ident`). Returns (kind, next index, next line).
fn lex_prefixed_literal(chars: &[char], mut i: usize, mut line: u32) -> (TokenKind, usize, u32) {
    let at = |k: usize| chars.get(k).copied();
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
        if at(i) == Some('\'') {
            let (kind, ni, nl) = lex_quote(chars, i, line);
            debug_assert_eq!(kind, TokenKind::Char);
            return (TokenKind::Char, ni, nl);
        }
    }
    if at(i) == Some('r') {
        raw = true;
        i += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while at(i) == Some('#') {
            hashes += 1;
            i += 1;
        }
        if at(i) != Some('"') {
            // `r#ident` raw identifier: rewind conceptually and lex the word.
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            return (TokenKind::Ident(ident), i, line);
        }
        i += 1; // opening quote
        let start = i;
        loop {
            match at(i) {
                None => break,
                Some('\n') => {
                    line += 1;
                    i += 1;
                }
                Some('"') => {
                    let mut k = 0usize;
                    while k < hashes && at(i + 1 + k) == Some('#') {
                        k += 1;
                    }
                    if k == hashes {
                        let s: String = chars[start..i].iter().collect();
                        return (TokenKind::Str(s), i + 1 + hashes, line);
                    }
                    i += 1;
                }
                Some(_) => i += 1,
            }
        }
        let s: String = chars[start..].iter().collect();
        (TokenKind::Str(s), chars.len(), line)
    } else {
        // plain byte string b"…"
        let (s, ni, nl) = lex_string(chars, i, line);
        (TokenKind::Str(s), ni, nl)
    }
}

/// Lex a `"…"` string with escapes, starting at the opening quote.
/// Returns (contents, next index, next line).
fn lex_string(chars: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    let mut s = String::new();
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if let Some(&next) = chars.get(i + 1) {
                    s.push(next);
                    if next == '\n' {
                        line += 1;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => return (s, i + 1, line),
            '\n' => {
                s.push('\n');
                line += 1;
                i += 1;
            }
            c => {
                s.push(c);
                i += 1;
            }
        }
    }
    (s, i, line)
}

/// Lex from a `'`: either a char literal or a lifetime/label.
fn lex_quote(chars: &[char], i: usize, line: u32) -> (TokenKind, usize, u32) {
    let at = |k: usize| chars.get(k).copied();
    debug_assert_eq!(chars[i], '\'');
    match at(i + 1) {
        Some('\\') => {
            // Escaped char literal. The opening escape spans chars[i+1]
            // (the backslash) and chars[i+2] (the escaped char, itself
            // possibly `'` or `\`), so the close scan starts at i+3.
            let mut j = i + 3;
            let mut nl = line;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                } else if chars[j] == '\'' {
                    return (TokenKind::Char, j + 1, nl);
                } else {
                    if chars[j] == '\n' {
                        nl += 1;
                    }
                    j += 1;
                }
            }
            (TokenKind::Char, chars.len(), nl)
        }
        Some(c) if (c.is_alphanumeric() || c == '_') && at(i + 2) != Some('\'') => {
            // Lifetime or label: consume the identifier.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            (TokenKind::Lifetime, j, line)
        }
        Some(_) if at(i + 2) == Some('\'') => (TokenKind::Char, i + 3, line),
        _ => (TokenKind::OtherPunct('\''), i + 1, line),
    }
}

/// Lex a numeric literal; integer values are parsed (any radix, `_`
/// separators, type suffix stripped), floats are carried without a value.
fn lex_number(chars: &[char], mut i: usize) -> (TokenKind, usize) {
    let at = |k: usize| chars.get(k).copied();
    let start = i;
    let (radix, digits_start) = if chars[i] == '0' {
        match at(i + 1) {
            Some('x') | Some('X') => (16, i + 2),
            Some('o') | Some('O') => (8, i + 2),
            Some('b') | Some('B') => (2, i + 2),
            _ => (10, i),
        }
    } else {
        (10, i)
    };
    i = digits_start;
    let mut is_float = false;
    while i < chars.len() {
        let c = chars[i];
        if c.is_digit(radix) || c == '_' {
            i += 1;
        } else if radix == 10 && c == '.' && at(i + 1).map(|d| d.is_ascii_digit()) == Some(true) {
            is_float = true;
            i += 1;
        } else if radix == 10 && (c == 'e' || c == 'E') && !is_float {
            // Exponent only if followed by digits/sign — `0xE8` never lands
            // here (radix 16 consumed it as a hex digit).
            match at(i + 1) {
                Some(d) if d.is_ascii_digit() => {
                    is_float = true;
                    i += 1;
                }
                Some('+') | Some('-') if at(i + 2).map(|d| d.is_ascii_digit()) == Some(true) => {
                    is_float = true;
                    i += 2;
                }
                _ => break,
            }
        } else if c.is_alphanumeric() {
            // Type suffix (u64, f32, usize, …): consume and stop digits.
            i += 1;
        } else {
            break;
        }
    }
    if is_float {
        return (TokenKind::Float, i);
    }
    // Split digits from any suffix: take chars valid in this radix.
    let body: String = chars[digits_start..i]
        .iter()
        .take_while(|c| c.is_digit(radix) || **c == '_')
        .filter(|c| **c != '_')
        .collect();
    let body = if body.is_empty() {
        // e.g. a bare `0` before a suffix-less break, or `0x` malformed.
        chars[start..i]
            .iter()
            .filter(|c| c.is_ascii_digit())
            .collect()
    } else {
        body
    };
    match u128::from_str_radix(&body, radix) {
        Ok(v) => (TokenKind::Int(v), i),
        Err(_) => (TokenKind::Float, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_string_containing_line_comment_is_not_a_comment() {
        let src = r##"let s = r#"not // a comment"#; let x = HashMap;"##;
        let lexed = lex(src);
        assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
        assert!(idents(&lexed).contains(&"HashMap"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Str(s) if s == "not // a comment")));
    }

    #[test]
    fn plain_string_hides_idents_and_slashes() {
        let src = "let s = \"Instant::now // HashMap\"; foo();";
        let lexed = lex(src);
        assert_eq!(idents(&lexed), vec!["let", "s", "foo"]);
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "a /* outer /* inner */ still comment */ b";
        let lexed = lex(src);
        assert_eq!(idents(&lexed), vec!["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn block_comment_tracks_end_line() {
        let src = "/* one\ntwo\nthree */ unsafe";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn char_literals_are_not_lifetimes_and_vice_versa() {
        let src = "let c = 'a'; let n = '\\n'; fn f<'scope>(x: &'scope str) {} 'label: loop {}";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn quote_char_literal_does_not_eat_the_rest_of_the_file() {
        let src = "let q = '\\''; HashMap";
        let lexed = lex(src);
        assert!(idents(&lexed).contains(&"HashMap"));
    }

    #[test]
    fn numbers_parse_across_radixes_suffixes_and_separators() {
        let src = "0x7F 0xFF00 1_000 42u64 0b1010 1.5 1e9 0x40_0000";
        let lexed = lex(src);
        let ints: Vec<u128> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![0x7F, 0xFF00, 1000, 42, 10, 0x40_0000]);
        let floats = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .count();
        assert_eq!(floats, 2);
    }

    #[test]
    fn shift_and_path_operators_are_joined() {
        let src = "a::b << 8 >> 2 <<= 1";
        let lexed = lex(src);
        let puncts: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["::", "<<", ">>", "<<="]);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nHashMap";
        let lexed = lex(src);
        let hm = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "HashMap"))
            .unwrap();
        assert_eq!(hm.line, 3);
    }
}
