//! A lightweight item/body parser on top of the token stream.
//!
//! The semantic rules (M6/D3/P1) need more than token patterns but far
//! less than a parse tree: which functions exist, which type each method
//! belongs to, whether the receiver is `&mut self`, and a flat summary of
//! what each body *does* — calls, method calls, `self.<field>` accesses
//! with their effect (read / assign / `&mut` borrow / method receiver),
//! and indexing sites. No expression grammar: bodies are reduced to those
//! op sequences, closures are attributed to their enclosing function, and
//! macro invocations stay opaque (their argument tokens are still scanned,
//! which errs on the side of reporting).
//!
//! Test code is invisible to the model: `#[cfg(test)]` modules and
//! `#[test]` functions are skipped entirely, so unwraps in tests never
//! enter the P1 call graph and fixture helpers never shadow model methods.

use crate::lexer::{Token, TokenKind};

/// A `const NAME: Ty = rhs;` item (top-level or in an impl block), with
/// the right-hand side summarized just enough to expand plane masks.
#[derive(Debug, Clone)]
pub struct ConstItem {
    pub name: String,
    pub line: u32,
    /// Identifiers in the declared type (`PlaneMask`, `u32`, …).
    pub ty: Vec<String>,
    /// Identifiers on the right-hand side (path segments, const names,
    /// method names like `union`).
    pub rhs_idents: Vec<String>,
    /// Integer literals on the right-hand side.
    pub rhs_ints: Vec<u128>,
    /// The right-hand side contains a `<<` (single-bit definitions).
    pub rhs_shift: bool,
}

/// One function or method, with its body reduced to a [`BodyOp`] list.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Line/byte span of the `fn` name token.
    pub line: u32,
    pub byte: u32,
    pub len: u32,
    /// Last path segment of the impl target type; `None` for free
    /// functions. Trait definitions use the trait's own name.
    pub self_ty: Option<String>,
    /// `Some(trait)` when the fn lives in an `impl Trait for Type` block.
    pub trait_name: Option<String>,
    /// Signature takes `&mut self`.
    pub mut_self: bool,
    /// Signature takes any flavor of `self`.
    pub has_self: bool,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    pub ops: Vec<BodyOp>,
}

/// Receiver root of a method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.m(…)`.
    SelfDirect,
    /// `self.<field>…m(…)` — the named root field.
    SelfField(String),
    /// Anything else (`x.m(…)`, `f().m(…)`, …).
    Other,
}

/// What a `self.<field>` use site does to the field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldEffect {
    Read,
    /// `self.f = …` (plain) or `self.f op= …` (compound). `op` is the
    /// operator punct (`=`, `|=`, `+=`, …); `rhs_idents` are the
    /// identifiers up to the end of the statement.
    Assign {
        op: &'static str,
        rhs_idents: Vec<String>,
    },
    /// `&mut self.f` — a mutable borrow escapes the access site.
    MutBorrow,
    /// `self.f.…m(…)` — `m` may or may not mutate; resolution is the
    /// semantic model's job (it knows every method's `&mut self`-ness).
    MethodRecv(String),
}

/// One reduced body operation.
#[derive(Debug, Clone)]
pub enum BodyOp {
    /// Free or associated call: `foo(…)` → `["foo"]`,
    /// `survey::mix_seed(…)` → `["survey", "mix_seed"]`.
    Call {
        path: Vec<String>,
        line: u32,
        byte: u32,
    },
    /// `.name(…)` method call.
    Method {
        name: String,
        recv: Recv,
        line: u32,
        byte: u32,
    },
    /// A `self.<field>` access. `guards` carries the identifiers of the
    /// enclosing `if`/`while` conditions — how the semantic model learns
    /// the field→plane partition from `restore_planes`-style bodies.
    SelfField {
        field: String,
        effect: FieldEffect,
        guards: Vec<String>,
        line: u32,
        byte: u32,
    },
    /// A postfix `expr[…]` indexing site; `arith` when the index tokens
    /// contain `+`/`-`/`*` (a computed index, the panicky kind).
    Index { arith: bool, line: u32, byte: u32 },
}

/// Parser output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub consts: Vec<ConstItem>,
    pub fns: Vec<FnItem>,
}

fn as_ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokenKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, p: &str) -> bool {
    matches!(&t.kind, TokenKind::Punct(q) if *q == p)
}

/// Keywords that can directly precede a `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "where", "impl",
    "dyn", "let", "else", "break", "continue", "ref", "mut", "pub", "use", "crate", "super",
];

/// Parse a whole file's token stream into items.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(tokens, 0, tokens.len(), None, None, &mut out);
    out
}

/// Skip a balanced token group opening at `i` (which must sit on the open
/// punct). Returns the index just past the matching close.
fn skip_balanced(tokens: &[Token], i: usize, open: &str, close: &str) -> usize {
    debug_assert!(is_punct(&tokens[i], open));
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        if is_punct(&tokens[j], open) {
            depth += 1;
        } else if is_punct(&tokens[j], close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Skip generic params starting at a `<`, treating the joined `<<`/`>>`
/// tokens as two opens/closes. Returns the index just past the final `>`.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, "<<") {
            depth += 2;
        } else if is_punct(t, ">") {
            depth -= 1;
        } else if is_punct(t, ">>") {
            depth -= 2;
        } else if is_punct(t, "->") || is_punct(t, ">=") || is_punct(t, ">>=") {
            // `Fn() -> T` inside bounds; comparison ops cannot appear in
            // generic position in the code this parser targets.
        }
        j += 1;
        if depth <= 0 {
            return j;
        }
    }
    tokens.len()
}

/// Whether index tokens `tokens[lo..hi]` contain binary arithmetic. `*`
/// and `-` count only when preceded by an operand (identifier, literal,
/// `)`, `]`): a leading `*` is a deref and a leading `-` a negation, and
/// `v[*i]` is a plain lookup, not a computed index.
fn index_arith(tokens: &[Token], lo: usize, hi: usize) -> bool {
    (lo..hi.min(tokens.len())).any(|k| {
        let t = &tokens[k];
        (is_punct(t, "+") || is_punct(t, "-") || is_punct(t, "*"))
            && k > lo
            && (matches!(&tokens[k - 1].kind, TokenKind::Ident(_) | TokenKind::Int(_))
                || is_punct(&tokens[k - 1], ")")
                || is_punct(&tokens[k - 1], "]"))
    })
}

/// Parse items in `tokens[start..end]`. `self_ty`/`trait_name` are set
/// when inside an `impl` (or trait) block.
fn parse_items(
    tokens: &[Token],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    out: &mut ParsedFile,
) {
    let mut i = start;
    // Set when the most recent attribute batch mentioned `test`
    // (`#[test]`, `#[cfg(test)]`); the next item is then skipped.
    let mut pending_test = false;
    // Visibility of the item being scanned.
    let mut pending_pub = false;
    while i < end {
        let t = &tokens[i];
        if is_punct(t, "#") {
            // Attribute: `#[…]` or `#![…]`.
            let mut j = i + 1;
            if j < end && is_punct(&tokens[j], "!") {
                j += 1;
            }
            if j < end && is_punct(&tokens[j], "[") {
                let close = skip_balanced(tokens, j, "[", "]");
                if tokens[j..close].iter().any(|t| as_ident(t) == Some("test")) {
                    pending_test = true;
                }
                i = close;
            } else {
                i += 1;
            }
            continue;
        }
        let Some(word) = as_ident(t) else {
            i += 1;
            continue;
        };
        match word {
            "pub" => {
                pending_pub = true;
                i += 1;
                // `pub(crate)` / `pub(super)` restriction.
                if i < end && is_punct(&tokens[i], "(") {
                    i = skip_balanced(tokens, i, "(", ")");
                }
            }
            "macro_rules" if i + 1 < end && is_punct(&tokens[i + 1], "!") => {
                // A macro definition's body is token soup, not items —
                // skip `macro_rules ! name { … }` wholesale so rule arms
                // that merely *look* like fns don't enter the model.
                let mut j = i + 2;
                while j < end && !is_punct(&tokens[j], "{") {
                    j += 1;
                }
                i = if j < end {
                    skip_balanced(tokens, j, "{", "}")
                } else {
                    j
                };
                pending_pub = false;
                pending_test = false;
            }
            "impl" if !pending_test => {
                // `impl [<…>] Path [for Path] [where …] { items }`
                let mut j = i + 1;
                if j < end && is_punct(&tokens[j], "<") {
                    j = skip_generics(tokens, j);
                }
                let (mut first, mut second): (Option<String>, Option<String>) = (None, None);
                let mut saw_for = false;
                while j < end && !is_punct(&tokens[j], "{") {
                    if is_punct(&tokens[j], "<") {
                        j = skip_generics(tokens, j);
                        continue;
                    }
                    match as_ident(&tokens[j]) {
                        Some("for") => saw_for = true,
                        Some("where") => {
                            // Bounds cannot contain `{`; scan to the body.
                            while j < end && !is_punct(&tokens[j], "{") {
                                j += 1;
                            }
                            break;
                        }
                        Some(seg) => {
                            let slot = if saw_for { &mut second } else { &mut first };
                            *slot = Some(seg.to_string());
                        }
                        None => {}
                    }
                    j += 1;
                }
                if j < end && is_punct(&tokens[j], "{") {
                    let close = skip_balanced(tokens, j, "{", "}");
                    let (ty, tr) = if saw_for {
                        (second, first)
                    } else {
                        (first, None)
                    };
                    parse_items(tokens, j + 1, close - 1, ty.as_deref(), tr.as_deref(), out);
                    i = close;
                } else {
                    i = j + 1;
                }
                pending_pub = false;
            }
            "trait" if !pending_test => {
                // Default method bodies belong to the trait's name.
                let name = tokens.get(i + 1).and_then(as_ident).map(str::to_string);
                let mut j = i + 2;
                while j < end && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
                    if is_punct(&tokens[j], "<") {
                        j = skip_generics(tokens, j);
                    } else {
                        j += 1;
                    }
                }
                if j < end && is_punct(&tokens[j], "{") {
                    let close = skip_balanced(tokens, j, "{", "}");
                    parse_items(tokens, j + 1, close - 1, name.as_deref(), None, out);
                    i = close;
                } else {
                    i = j + 1;
                }
                pending_pub = false;
            }
            "mod" => {
                // `mod name;` or `mod name { … }`. Test modules are
                // skipped wholesale.
                let mut j = i + 2;
                while j < end && !is_punct(&tokens[j], "{") && !is_punct(&tokens[j], ";") {
                    j += 1;
                }
                if j < end && is_punct(&tokens[j], "{") {
                    let close = skip_balanced(tokens, j, "{", "}");
                    if !pending_test {
                        parse_items(tokens, j + 1, close - 1, None, None, out);
                    }
                    i = close;
                } else {
                    i = j + 1;
                }
                pending_test = false;
                pending_pub = false;
            }
            "fn" => {
                let (item, next) = parse_fn(tokens, i, end, self_ty, trait_name, pending_pub);
                if !pending_test {
                    if let Some(f) = item {
                        out.fns.push(f);
                    }
                }
                i = next;
                pending_test = false;
                pending_pub = false;
            }
            "const" | "static" => {
                // `const NAME: Ty = rhs;` — but `const fn` falls through
                // to the `fn` arm on the next iteration.
                if tokens.get(i + 1).and_then(as_ident) == Some("fn") {
                    i += 1;
                    continue;
                }
                let (item, next) = parse_const(tokens, i, end);
                if !pending_test {
                    if let Some(c) = item {
                        out.consts.push(c);
                    }
                }
                i = next;
                pending_test = false;
                pending_pub = false;
            }
            "struct" | "enum" | "union" => {
                // Skip the definition body; struct fields are extracted by
                // `model::struct_defs` which sees the whole stream.
                let mut j = i + 1;
                while j < end
                    && !is_punct(&tokens[j], "{")
                    && !is_punct(&tokens[j], ";")
                    && !is_punct(&tokens[j], "(")
                {
                    if is_punct(&tokens[j], "<") {
                        j = skip_generics(tokens, j);
                    } else {
                        j += 1;
                    }
                }
                i = if j < end && is_punct(&tokens[j], "{") {
                    skip_balanced(tokens, j, "{", "}")
                } else if j < end && is_punct(&tokens[j], "(") {
                    skip_balanced(tokens, j, "(", ")")
                } else {
                    j + 1
                };
                pending_test = false;
                pending_pub = false;
            }
            "unsafe" | "async" | "extern" | "default" => {
                // Qualifiers before `fn`/`impl`; `extern "C"` carries a
                // string literal the scan steps over naturally.
                i += 1;
            }
            _ => {
                i += 1;
                pending_pub = false;
            }
        }
    }
}

/// Parse `const NAME: Ty = rhs;` starting at the `const` keyword.
fn parse_const(tokens: &[Token], i: usize, end: usize) -> (Option<ConstItem>, usize) {
    let Some(name) = tokens.get(i + 1).and_then(as_ident) else {
        return (None, i + 1);
    };
    let line = tokens[i + 1].line;
    let mut j = i + 2;
    let mut ty = Vec::new();
    let mut seen_colon = false;
    while j < end && !is_punct(&tokens[j], "=") && !is_punct(&tokens[j], ";") {
        if is_punct(&tokens[j], ":") {
            seen_colon = true;
        } else if seen_colon {
            if let Some(id) = as_ident(&tokens[j]) {
                ty.push(id.to_string());
            }
        }
        j += 1;
    }
    let mut rhs_idents = Vec::new();
    let mut rhs_ints = Vec::new();
    let mut rhs_shift = false;
    if j < end && is_punct(&tokens[j], "=") {
        j += 1;
        let mut depth = 0i32;
        while j < end {
            let t = &tokens[j];
            if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
                depth -= 1;
            } else if depth == 0 && is_punct(t, ";") {
                break;
            } else if is_punct(t, "<<") {
                rhs_shift = true;
            } else if let Some(id) = as_ident(t) {
                rhs_idents.push(id.to_string());
            } else if let TokenKind::Int(v) = t.kind {
                rhs_ints.push(v);
            }
            j += 1;
        }
    }
    (
        Some(ConstItem {
            name: name.to_string(),
            line,
            ty,
            rhs_idents,
            rhs_ints,
            rhs_shift,
        }),
        j + 1,
    )
}

/// Parse a fn item starting at the `fn` keyword. Returns the item (None
/// for bodyless declarations, which still advance) and the next index.
fn parse_fn(
    tokens: &[Token],
    i: usize,
    end: usize,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    is_pub: bool,
) -> (Option<FnItem>, usize) {
    let Some(name_tok) = tokens.get(i + 1) else {
        return (None, i + 1);
    };
    let Some(name) = as_ident(name_tok) else {
        return (None, i + 1);
    };
    let mut j = i + 2;
    if j < end && is_punct(&tokens[j], "<") {
        j = skip_generics(tokens, j);
    }
    if j >= end || !is_punct(&tokens[j], "(") {
        return (None, j);
    }
    let params_end = skip_balanced(tokens, j, "(", ")");
    // First-parameter self detection: look at tokens up to the first `,`
    // at paren depth 1.
    let (mut has_self, mut saw_amp, mut saw_mut, mut mut_self) = (false, false, false, false);
    {
        let mut depth = 0i32;
        for t in &tokens[j..params_end] {
            if is_punct(t, "(") || is_punct(t, "[") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") {
                depth -= 1;
            } else if depth == 1 && is_punct(t, ",") {
                break;
            } else if depth == 1 {
                match as_ident(t) {
                    Some("self") => {
                        has_self = true;
                        mut_self = saw_amp && saw_mut;
                        break;
                    }
                    Some("mut") => saw_mut = true,
                    _ => {}
                }
                if is_punct(t, "&") {
                    saw_amp = true;
                }
            }
        }
    }
    // Scan past return type / where clause to the body `{` or a `;`.
    let mut k = params_end;
    while k < end && !is_punct(&tokens[k], "{") && !is_punct(&tokens[k], ";") {
        if is_punct(&tokens[k], "<") {
            k = skip_generics(tokens, k);
        } else {
            k += 1;
        }
    }
    if k >= end || is_punct(&tokens[k], ";") {
        // Trait method declaration without a body.
        return (None, k + 1);
    }
    let body_end = skip_balanced(tokens, k, "{", "}");
    let mut ops = Vec::new();
    scan_body(tokens, k + 1, body_end - 1, &mut Vec::new(), &mut ops);
    (
        Some(FnItem {
            name: name.to_string(),
            line: name_tok.line,
            byte: name_tok.byte,
            len: name_tok.len,
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            mut_self,
            has_self,
            is_pub,
            ops,
        }),
        body_end,
    )
}

/// Assignment-operator puncts (the lexer joins them).
fn is_op_assign(t: &Token) -> bool {
    matches!(
        &t.kind,
        TokenKind::Punct(p)
            if matches!(
                *p,
                "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "|=" | "&=" | "<<=" | ">>="
            )
    )
}

/// Scan a body token range into ops. `guards` is the enclosing-condition
/// ident stack (shared across nesting); ops append to `out`.
fn scan_body(
    tokens: &[Token],
    start: usize,
    end: usize,
    guards: &mut Vec<(i32, Vec<String>)>,
    out: &mut Vec<BodyOp>,
) {
    let mut depth = 0i32;
    // While Some, idents are collected into a pending guard that attaches
    // at the next `{`; the i32 is the paren depth at collection start.
    let mut collecting: Option<(i32, Vec<String>)> = None;
    let mut paren = 0i32;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        // Attribute in statement position: skip.
        if is_punct(t, "#") && j + 1 < end && is_punct(&tokens[j + 1], "[") {
            j = skip_balanced(tokens, j + 1, "[", "]");
            continue;
        }
        if is_punct(t, "(") {
            paren += 1;
            j += 1;
            continue;
        }
        if is_punct(t, ")") {
            paren -= 1;
            j += 1;
            continue;
        }
        if is_punct(t, "{") {
            if let Some((p, idents)) = collecting.take() {
                if p == paren {
                    guards.push((depth, idents));
                } // else: a block opened inside the condition; drop it.
            }
            depth += 1;
            j += 1;
            continue;
        }
        if is_punct(t, "}") {
            depth -= 1;
            while guards.last().is_some_and(|(d, _)| *d >= depth) {
                guards.pop();
            }
            j += 1;
            continue;
        }
        match as_ident(t) {
            Some("if") | Some("while") => {
                collecting = Some((paren, Vec::new()));
                j += 1;
                continue;
            }
            Some("self") if j + 2 < end && is_punct(&tokens[j + 1], ".") => {
                j = scan_self_chain(tokens, j, end, guards, &mut collecting, out);
                continue;
            }
            Some(word) => {
                if let Some((_, idents)) = collecting.as_mut() {
                    idents.push(word.to_string());
                }
                // Free/associated call: `word(` not preceded by `.`, not a
                // macro `word!(`, not a keyword.
                let prev_dot = j > start && is_punct(&tokens[j - 1], ".");
                let next = tokens.get(j + 1);
                if !prev_dot
                    && !NON_CALL_KEYWORDS.contains(&word)
                    && next.is_some_and(|n| is_punct(n, "("))
                {
                    let mut path = vec![word.to_string()];
                    let mut b = j;
                    while b >= 2 && is_punct(&tokens[b - 1], "::") {
                        if let Some(seg) = as_ident(&tokens[b - 2]) {
                            path.insert(0, seg.to_string());
                            b -= 2;
                        } else {
                            break;
                        }
                    }
                    out.push(BodyOp::Call {
                        path,
                        line: t.line,
                        byte: t.byte,
                    });
                }
                j += 1;
                continue;
            }
            None => {}
        }
        // `.name(` method call on a non-self receiver.
        if is_punct(t, ".") {
            if let (Some(name_tok), Some(paren_tok)) = (tokens.get(j + 1), tokens.get(j + 2)) {
                if let Some(name) = as_ident(name_tok) {
                    if is_punct(paren_tok, "(") {
                        if let Some((_, idents)) = collecting.as_mut() {
                            idents.push(name.to_string());
                        }
                        out.push(BodyOp::Method {
                            name: name.to_string(),
                            recv: Recv::Other,
                            line: name_tok.line,
                            byte: name_tok.byte,
                        });
                        j += 2;
                        continue;
                    }
                    if let Some((_, idents)) = collecting.as_mut() {
                        idents.push(name.to_string());
                    }
                    j += 2;
                    continue;
                }
            }
            j += 1;
            continue;
        }
        // Postfix indexing: `ident[`, `)[`, `][`.
        if is_punct(t, "[") {
            let postfix = j > start
                && (matches!(&tokens[j - 1].kind, TokenKind::Ident(_))
                    || is_punct(&tokens[j - 1], ")")
                    || is_punct(&tokens[j - 1], "]"));
            let close = skip_balanced(tokens, j, "[", "]");
            if postfix {
                let arith = index_arith(tokens, j + 1, close - 1);
                out.push(BodyOp::Index {
                    arith,
                    line: t.line,
                    byte: t.byte,
                });
            }
            // Scan the bracketed tokens for nested ops (calls, self uses).
            scan_body(tokens, j + 1, close - 1, guards, out);
            j = close;
            continue;
        }
        j += 1;
    }
}

/// Scan a `self.…` chain starting at the `self` token. Records the field
/// access (with its effect) plus any method ops, and returns the index to
/// resume the main scan at.
fn flat_guards(guards: &[(i32, Vec<String>)]) -> Vec<String> {
    guards
        .iter()
        .flat_map(|(_, ids)| ids.iter().cloned())
        .collect()
}

fn scan_self_chain(
    tokens: &[Token],
    i: usize,
    end: usize,
    guards: &mut Vec<(i32, Vec<String>)>,
    collecting: &mut Option<(i32, Vec<String>)>,
    out: &mut Vec<BodyOp>,
) -> usize {
    // `&mut self.f` — look back past nothing: tokens[i-2..i] == [&, mut].
    let mut_borrow =
        i >= 2 && is_punct(&tokens[i - 2], "&") && as_ident(&tokens[i - 1]) == Some("mut");
    // First segment after `self.`.
    let seg = &tokens[i + 2];
    let (field, mut j) = match &seg.kind {
        TokenKind::Ident(s) => (s.clone(), i + 3),
        TokenKind::Int(v) => (v.to_string(), i + 3),
        _ => return i + 1,
    };
    if let Some((_, idents)) = collecting.as_mut() {
        idents.push("self".to_string());
        idents.push(field.clone());
    }
    // `self.m(` — method on self, no field involved.
    if j < end && is_punct(&tokens[j], "(") {
        out.push(BodyOp::Method {
            name: field,
            recv: Recv::SelfDirect,
            line: seg.line,
            byte: seg.byte,
        });
        return j; // main scan proceeds into the argument list
    }
    // Walk the access chain: `.sub`, `.m(`, `[…]`.
    loop {
        if j < end && is_punct(&tokens[j], ".") {
            let Some(next) = tokens.get(j + 1) else { break };
            match &next.kind {
                TokenKind::Ident(sub) => {
                    if let Some((_, idents)) = collecting.as_mut() {
                        idents.push(sub.clone());
                    }
                    if tokens.get(j + 2).is_some_and(|t| is_punct(t, "(")) {
                        // Method call rooted at self.field.
                        out.push(BodyOp::Method {
                            name: sub.clone(),
                            recv: Recv::SelfField(field.clone()),
                            line: next.line,
                            byte: next.byte,
                        });
                        out.push(BodyOp::SelfField {
                            field,
                            effect: FieldEffect::MethodRecv(sub.clone()),
                            guards: flat_guards(guards),
                            line: seg.line,
                            byte: seg.byte,
                        });
                        return j + 2; // resume inside the argument list
                    }
                    j += 2;
                    continue;
                }
                TokenKind::Int(_) => {
                    j += 2;
                    continue;
                }
                _ => break,
            }
        }
        if j < end && is_punct(&tokens[j], "[") {
            let close = skip_balanced(tokens, j, "[", "]");
            let arith = index_arith(tokens, j + 1, close.saturating_sub(1));
            out.push(BodyOp::Index {
                arith,
                line: tokens[j].line,
                byte: tokens[j].byte,
            });
            scan_body(tokens, j + 1, close - 1, guards, out);
            j = close;
            continue;
        }
        break;
    }
    // Chain ended; classify the effect from what follows.
    let effect = if mut_borrow {
        FieldEffect::MutBorrow
    } else if j < end && (is_punct(&tokens[j], "=") || is_op_assign(&tokens[j])) {
        let TokenKind::Punct(op) = tokens[j].kind else {
            unreachable!("assignment operators are Punct tokens")
        };
        let mut rhs_idents = Vec::new();
        let mut k = j + 1;
        let mut depth = 0i32;
        while k < end {
            let t = &tokens[k];
            if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
                depth += 1;
            } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && is_punct(t, ";") {
                break;
            } else if let Some(id) = as_ident(t) {
                rhs_idents.push(id.to_string());
            }
            k += 1;
        }
        FieldEffect::Assign { op, rhs_idents }
    } else {
        FieldEffect::Read
    };
    out.push(BodyOp::SelfField {
        field,
        effect,
        guards: flat_guards(guards),
        line: seg.line,
        byte: seg.byte,
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn fns_named<'a>(p: &'a ParsedFile, name: &str) -> Vec<&'a FnItem> {
        p.fns.iter().filter(|f| f.name == name).collect()
    }

    #[test]
    fn methods_get_their_impl_type_and_mut_selfness() {
        let p = parse_src(
            "struct S { x: u32 }\n\
             impl S {\n\
                 pub fn get(&self) -> u32 { self.x }\n\
                 fn set(&mut self, v: u32) { self.x = v; }\n\
                 pub(crate) fn fresh() -> S { S { x: 0 } }\n\
             }\n\
             fn free(s: &mut S) { s.set(3); }",
        );
        let get = fn_named(&p, "get");
        assert_eq!(get.self_ty.as_deref(), Some("S"));
        assert!(!get.mut_self && get.has_self && get.is_pub);
        let set = fn_named(&p, "set");
        assert!(set.mut_self && !set.is_pub);
        let fresh = fn_named(&p, "fresh");
        assert!(!fresh.has_self && fresh.is_pub);
        let free = fn_named(&p, "free");
        assert_eq!(free.self_ty, None);
        assert!(free
            .ops
            .iter()
            .any(|o| matches!(o, BodyOp::Method { name, recv: Recv::Other, .. } if name == "set")));
    }

    #[test]
    fn self_field_effects_are_classified() {
        let p = parse_src(
            "impl S {\n\
                 fn m(&mut self) {\n\
                     self.a = 1;\n\
                     self.b |= FLAG;\n\
                     self.c.push(2);\n\
                     let r = &mut self.d;\n\
                     let v = self.e;\n\
                     self.tick();\n\
                 }\n\
             }",
        );
        let m = fn_named(&p, "m");
        let field = |name: &str| {
            m.ops
                .iter()
                .find_map(|o| match o {
                    BodyOp::SelfField { field, effect, .. } if field == name => Some(effect),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("no access to {name}"))
        };
        assert!(matches!(field("a"), FieldEffect::Assign { op: "=", .. }));
        match field("b") {
            FieldEffect::Assign {
                op: "|=",
                rhs_idents,
            } => assert_eq!(rhs_idents, &["FLAG".to_string()]),
            other => panic!("b: {other:?}"),
        }
        assert!(matches!(field("c"), FieldEffect::MethodRecv(m) if m == "push"));
        assert!(matches!(field("d"), FieldEffect::MutBorrow));
        assert!(matches!(field("e"), FieldEffect::Read));
        assert!(m.ops.iter().any(
            |o| matches!(o, BodyOp::Method { name, recv: Recv::SelfDirect, .. } if name == "tick")
        ));
    }

    #[test]
    fn guards_attach_to_field_writes() {
        let p = parse_src(
            "impl S {\n\
                 fn restore(&mut self, planes: Mask) {\n\
                     if planes.intersects(Mask::MSR) {\n\
                         self.msr = 0;\n\
                     }\n\
                     self.unguarded = 1;\n\
                 }\n\
             }",
        );
        let f = fn_named(&p, "restore");
        let guards_of = |name: &str| {
            f.ops
                .iter()
                .find_map(|o| match o {
                    BodyOp::SelfField { field, guards, .. } if field == name => {
                        Some(guards.clone())
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert!(guards_of("msr").contains(&"MSR".to_string()));
        assert!(guards_of("unguarded").is_empty());
    }

    #[test]
    fn test_code_is_invisible() {
        let p = parse_src(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { x.unwrap(); }\n\
                 fn helper() {}\n\
             }\n\
             #[test]\n\
             fn standalone() {}",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn const_rhs_is_summarized() {
        let p = parse_src(
            "impl Mask {\n\
                 pub const MSR: Mask = Mask(1 << 0);\n\
                 pub const ALL: Mask = Mask(0xFF);\n\
             }\n\
             const TICK: Mask = Mask::MSR.union(Mask::WORK);",
        );
        let c = |n: &str| p.consts.iter().find(|c| c.name == n).unwrap();
        assert!(c("MSR").rhs_shift);
        assert_eq!(c("ALL").rhs_ints, vec![0xFF]);
        let tick = c("TICK");
        assert!(!tick.rhs_shift);
        assert!(tick.rhs_idents.contains(&"MSR".to_string()));
        assert!(tick.rhs_idents.contains(&"WORK".to_string()));
        assert_eq!(tick.ty, vec!["Mask".to_string()]);
    }

    #[test]
    fn generic_impls_with_where_clauses_keep_their_type() {
        let p = parse_src(
            "impl<T: Clone + Send, const N: usize> Ring<T, N>\n\
             where\n\
                 T: std::fmt::Debug,\n\
                 [T; N]: Default,\n\
             {\n\
                 pub fn push(&mut self, v: T) { self.slots.push(v); }\n\
                 fn drain<F>(&mut self, f: F) where F: FnMut(T) -> bool { self.n = 0; }\n\
             }",
        );
        let push = fn_named(&p, "push");
        assert_eq!(push.self_ty.as_deref(), Some("Ring"));
        assert!(push.mut_self);
        let drain = fn_named(&p, "drain");
        assert_eq!(drain.self_ty.as_deref(), Some("Ring"));
        assert!(drain
            .ops
            .iter()
            .any(|o| matches!(o, BodyOp::SelfField { field, .. } if field == "n")));
    }

    #[test]
    fn impl_trait_args_and_nested_closures_parse_through() {
        let p = parse_src(
            "impl S {\n\
                 fn feed(&mut self, src: impl Iterator<Item = (u32, f64)>) -> impl Fn(u32) -> f64 {\n\
                     let scale = self.scale;\n\
                     src.for_each(|(k, v)| {\n\
                         self.table.insert(k, (0..v as u32).map(|i| i + k).sum());\n\
                     });\n\
                     move |x| x as f64 * scale\n\
                 }\n\
             }",
        );
        let feed = fn_named(&p, "feed");
        assert_eq!(feed.self_ty.as_deref(), Some("S"));
        assert!(feed.mut_self);
        // The mutation inside the nested closure is still attributed to
        // `feed`: `self.table.insert(…)`.
        assert!(feed.ops.iter().any(|o| matches!(
            o,
            BodyOp::SelfField { field, effect: FieldEffect::MethodRecv(m), .. }
                if field == "table" && m == "insert"
        )));
    }

    #[test]
    fn macro_invocations_are_opaque_but_not_fatal() {
        // Macro bodies may hold token soup that is not valid Rust item
        // syntax; the parser must neither panic nor invent items from it.
        let p = parse_src(
            "macro_rules! weird { ($($t:tt)*) => { fn ghost() {} }; }\n\
             fn real(&self) {}\n\
             fn caller(s: &S) {\n\
                 weird!(fn bogus(&mut self) { self.x = 1; } => =>);\n\
                 assert_eq!(vec![1, 2], s.pairs());\n\
             }",
        );
        assert!(
            fns_named(&p, "ghost").is_empty(),
            "item invented from macro body"
        );
        assert!(
            fns_named(&p, "bogus").is_empty(),
            "item invented from macro args"
        );
        assert_eq!(fns_named(&p, "caller").len(), 1);
        // Calls inside macro arguments still surface for the call graph.
        let caller = fn_named(&p, "caller");
        assert!(caller
            .ops
            .iter()
            .any(|o| matches!(o, BodyOp::Method { name, .. } if name == "pairs")));
    }

    #[test]
    fn shifted_generics_in_signatures_do_not_derail_the_scan() {
        // `Vec<Option<T>>` ends in a joined `>>` token — the construct that
        // once truncated the model's struct scanner; pin the parser on it.
        let p = parse_src(
            "impl S {\n\
                 fn a(&mut self, xs: Vec<Option<u32>>) -> Option<Vec<u8>> { self.n = 1; None }\n\
                 fn b(&mut self) { self.m = 2; }\n\
             }",
        );
        assert!(fn_named(&p, "a")
            .ops
            .iter()
            .any(|o| matches!(o, BodyOp::SelfField { field, .. } if field == "n")));
        // `b` must still be visible after `a`'s `>>`-heavy signature.
        let b = fn_named(&p, "b");
        assert_eq!(b.self_ty.as_deref(), Some("S"));
        assert!(b.mut_self);
    }
}
