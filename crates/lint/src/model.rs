//! Tier-2 (semantic) rules: the MSR model's three sources of truth must
//! agree with each other.
//!
//! | Rule | Consistency enforced |
//! |---|---|
//! | M1 | gate allowlist ↔ `addresses.rs` constants (named, unique) |
//! | M2 | `fields.rs` encode/decode shifts and masks (paired, within 64 bits) |
//! | M3 | `experiments/*` modules ↔ survey registry (registered, unique ids) |
//! | M4 | `XSnapshot` structs ↔ their source struct `X` (every field captured or `snap:skip`-justified) |
//!
//! These checks parse the *declarative surface* of each file through the
//! same lexer the textual rules use — constant definitions, path
//! references, shift/mask literals, registry entries — not arbitrary Rust.
//! Each function takes source text (not paths) so tests can feed seeded
//! inconsistencies straight in.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::rules::Finding;

fn as_ident(t: &Token) -> Option<&str> {
    match &t.kind {
        TokenKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, p: &str) -> bool {
    matches!(&t.kind, TokenKind::Punct(q) if *q == p)
}

fn as_int(t: &Token) -> Option<u128> {
    match t.kind {
        TokenKind::Int(v) => Some(v),
        _ => None,
    }
}

/// Extract `[pub] const NAME: u32 = <int>;` items → (name, value, line).
fn u32_consts(tokens: &[Token]) -> Vec<(String, u128, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if as_ident(&tokens[i]) == Some("const")
            && i + 5 < tokens.len()
            && is_punct(&tokens[i + 2], ":")
            && as_ident(&tokens[i + 3]) == Some("u32")
            && is_punct(&tokens[i + 4], "=")
        {
            if let (Some(name), Some(v)) = (as_ident(&tokens[i + 1]), as_int(&tokens[i + 5])) {
                out.push((name.to_string(), v, tokens[i + 1].line));
                i += 6;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Find the body token range of `fn name` — (start, end) indices of the
/// tokens between the outermost braces, or None.
fn fn_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if as_ident(&tokens[i]) == Some("fn") && as_ident(&tokens[i + 1]) == Some(name) {
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(&tokens[j], "{") {
                j += 1;
            }
            if j == tokens.len() {
                return None;
            }
            let start = j + 1;
            let mut depth = 1usize;
            let mut k = start;
            while k < tokens.len() && depth > 0 {
                if is_punct(&tokens[k], "{") {
                    depth += 1;
                } else if is_punct(&tokens[k], "}") {
                    depth -= 1;
                }
                k += 1;
            }
            return Some((start, k.saturating_sub(1)));
        }
        i += 1;
    }
    None
}

/// M1: every address the gate references resolves to a named constant in
/// `addresses.rs`; constant values are unique; the allowlist never inserts
/// a raw numeric address.
pub fn check_addresses_and_gate(
    addr_path: &str,
    addr_src: &str,
    gate_path: &str,
    gate_src: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let addr_tokens = lex(addr_src).tokens;
    let consts = u32_consts(&addr_tokens);

    if consts.is_empty() {
        findings.push(Finding::new(
            addr_path,
            1,
            "M1",
            "no `const NAME: u32` MSR addresses found — parser and file have diverged".to_string(),
        ));
        return findings;
    }

    // Uniqueness: two names for one MSR number is a copy-paste bug.
    let mut by_value: BTreeMap<u128, &str> = BTreeMap::new();
    for (name, v, line) in &consts {
        if let Some(first) = by_value.get(v) {
            findings.push(Finding::new(
                addr_path,
                *line,
                "M1",
                format!("`{name}` duplicates MSR address {v:#x} already named `{first}`"),
            ));
        } else {
            by_value.insert(*v, name);
        }
    }
    let names: BTreeSet<&str> = consts.iter().map(|(n, _, _)| n.as_str()).collect();

    // The gate imports the address module under an alias
    // (`use crate::addresses as a;`); find it, then resolve every
    // `alias::NAME` reference.
    let gate_tokens = lex(gate_src).tokens;
    let mut alias = "a".to_string();
    for w in gate_tokens.windows(7) {
        if as_ident(&w[0]) == Some("use")
            && as_ident(&w[1]) == Some("crate")
            && is_punct(&w[2], "::")
            && as_ident(&w[3]) == Some("addresses")
            && as_ident(&w[4]) == Some("as")
        {
            if let Some(al) = as_ident(&w[5]) {
                alias = al.to_string();
            }
        }
    }
    for (i, t) in gate_tokens.iter().enumerate() {
        if as_ident(t) == Some(alias.as_str())
            && gate_tokens.get(i + 1).is_some_and(|n| is_punct(n, "::"))
        {
            if let Some(name) = gate_tokens.get(i + 2).and_then(as_ident) {
                if !names.contains(name) {
                    findings.push(Finding::new(
                        gate_path,
                        t.line,
                        "M1",
                        format!("gate references `{alias}::{name}` but addresses.rs defines no such constant"),
                    ));
                }
            }
        }
    }

    // Inside the allowlist itself, a raw numeric address bypasses the
    // naming discipline entirely.
    if let Some((start, end)) = fn_body(&gate_tokens, "survey_allowlist") {
        let body = &gate_tokens[start..end];
        for w in body.windows(3) {
            if as_ident(&w[0]) == Some("insert") && is_punct(&w[1], "(") {
                if let Some(v) = as_int(&w[2]) {
                    findings.push(Finding::new(
                        gate_path,
                        w[2].line,
                        "M1",
                        format!(
                            "allowlist inserts raw address {v:#x}; use a named constant \
                             from addresses.rs"
                        ),
                    ));
                }
            }
        }
    } else {
        findings.push(Finding::new(
            gate_path,
            1,
            "M1",
            "no `fn survey_allowlist` found — parser and file have diverged".to_string(),
        ));
    }

    findings.sort();
    findings
}

/// A shift/mask pair extracted from one statement: `(expr & M) << S`
/// (encode idiom) or `(v >> S) & M` (decode idiom). Shift 0 means a mask
/// with no shift; mask `None` means a shift whose operand width is implied
/// by the type (e.g. `(x as u64) << 8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FieldPair {
    shift: u128,
    mask: Option<u128>,
    line: u32,
}

/// Per-function shift/mask summary.
#[derive(Debug, Default)]
struct FieldUse {
    pairs: Vec<FieldPair>,
    /// Literal left-shift amounts (encode direction).
    shl: Vec<u128>,
    /// Literal right-shift amounts (decode direction).
    shr: Vec<u128>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Mask(u128, u32),
    Shl(u128, u32),
    Shr(u128, u32),
}

/// Collect shift/mask events per statement of a function body, then pair
/// them: a `<<` binds the nearest unconsumed mask before it, a `>>` the
/// nearest after it; leftover masks are shift-0 fields.
fn field_use(body: &[Token]) -> FieldUse {
    let mut usage = FieldUse::default();
    for stmt in body.split(|t| is_punct(t, ";")) {
        let mut events = Vec::new();
        let mut i = 0;
        while i < stmt.len() {
            let t = &stmt[i];
            if is_punct(t, "&") {
                if let Some(v) = stmt.get(i + 1).and_then(as_int) {
                    events.push(Event::Mask(v, t.line));
                    i += 2;
                    continue;
                }
            } else if is_punct(t, "<<") || is_punct(t, ">>") {
                if let Some(v) = stmt.get(i + 1).and_then(as_int) {
                    if is_punct(t, "<<") {
                        events.push(Event::Shl(v, t.line));
                        usage.shl.push(v);
                    } else {
                        events.push(Event::Shr(v, t.line));
                        usage.shr.push(v);
                    }
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }

        let mut consumed = vec![false; events.len()];
        for k in 0..events.len() {
            match events[k] {
                Event::Shl(s, line) => {
                    // Encode idiom: `(x & M) << S` — nearest mask to the left.
                    let mask = (0..k).rev().find_map(|j| match events[j] {
                        Event::Mask(m, _) if !consumed[j] => Some((j, m)),
                        _ => None,
                    });
                    if let Some((j, m)) = mask {
                        consumed[j] = true;
                        usage.pairs.push(FieldPair {
                            shift: s,
                            mask: Some(m),
                            line,
                        });
                    } else {
                        usage.pairs.push(FieldPair {
                            shift: s,
                            mask: None,
                            line,
                        });
                    }
                }
                Event::Shr(s, line) => {
                    // Decode idiom: `(v >> S) & M` — nearest mask to the right.
                    let mask = (k + 1..events.len()).find_map(|j| match events[j] {
                        Event::Mask(m, _) if !consumed[j] => Some((j, m)),
                        _ => None,
                    });
                    if let Some((j, m)) = mask {
                        consumed[j] = true;
                        usage.pairs.push(FieldPair {
                            shift: s,
                            mask: Some(m),
                            line,
                        });
                    } else {
                        usage.pairs.push(FieldPair {
                            shift: s,
                            mask: None,
                            line,
                        });
                    }
                }
                Event::Mask(..) => {}
            }
        }
        for (k, e) in events.iter().enumerate() {
            if let Event::Mask(m, line) = *e {
                if !consumed[k] {
                    usage.pairs.push(FieldPair {
                        shift: 0,
                        mask: Some(m),
                        line,
                    });
                }
            }
        }
    }
    usage
}

fn mask_bits(mask: u128) -> u128 {
    128 - mask.leading_zeros() as u128
}

/// M2: every `encode_*`/`decode_*` in fields.rs keeps its shift/mask pairs
/// inside 64 bits, and a name-paired encode/decode agree: everything the
/// decoder extracts (`>> S`) the encoder placed (`<< S`), and where both
/// sides mask the same field position the masks are identical.
pub fn check_fields(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = lex(src).tokens;

    // Enumerate encode_*/decode_* function names in order.
    let mut fns: Vec<String> = Vec::new();
    for w in tokens.windows(2) {
        if as_ident(&w[0]) == Some("fn") {
            if let Some(name) = as_ident(&w[1]) {
                if name.starts_with("encode_") || name.starts_with("decode_") {
                    fns.push(name.to_string());
                }
            }
        }
    }
    if fns.is_empty() {
        findings.push(Finding::new(
            path,
            1,
            "M2",
            "no encode_*/decode_* functions found — parser and file have diverged".to_string(),
        ));
        return findings;
    }

    let mut uses: BTreeMap<String, FieldUse> = BTreeMap::new();
    for name in &fns {
        if let Some((start, end)) = fn_body(&tokens, name) {
            uses.insert(name.clone(), field_use(&tokens[start..end]));
        }
    }

    // Within-64-bit checks, per function.
    for (name, usage) in &uses {
        for p in &usage.pairs {
            if p.shift >= 64 {
                findings.push(Finding::new(
                    path,
                    p.line,
                    "M2",
                    format!(
                        "{name}: shift by {} is out of range for a 64-bit MSR",
                        p.shift
                    ),
                ));
            } else if let Some(m) = p.mask {
                if p.shift + mask_bits(m) > 64 {
                    findings.push(Finding::new(
                        path,
                        p.line,
                        "M2",
                        format!(
                            "{name}: field mask {m:#x} shifted by {} exceeds 64 bits",
                            p.shift
                        ),
                    ));
                }
            }
        }
    }

    // Encode/decode pairing.
    for (name, dec) in &uses {
        let Some(suffix) = name.strip_prefix("decode_") else {
            continue;
        };
        let Some(enc) = uses.get(&format!("encode_{suffix}")) else {
            continue;
        };
        // Every decoded position must have been encoded at the same shift.
        let mut enc_shl = enc.shl.clone();
        for s in &dec.shr {
            if let Some(pos) = enc_shl.iter().position(|e| e == s) {
                enc_shl.remove(pos);
            } else {
                let line = dec
                    .pairs
                    .iter()
                    .find(|p| p.shift == *s)
                    .map(|p| p.line)
                    .unwrap_or(1);
                findings.push(Finding::new(
                    path,
                    line,
                    "M2",
                    format!(
                        "decode_{suffix} extracts a field at `>> {s}` but encode_{suffix} \
                         never places one there (its shifts: {:?})",
                        enc.shl
                    ),
                ));
            }
        }
        // Where both sides mask the same field position, the masks agree.
        let shifts: BTreeSet<u128> = dec
            .pairs
            .iter()
            .chain(&enc.pairs)
            .filter(|p| p.mask.is_some())
            .map(|p| p.shift)
            .collect();
        for s in shifts {
            let masks_at = |u: &FieldUse| -> BTreeSet<u128> {
                u.pairs
                    .iter()
                    .filter(|p| p.shift == s)
                    .filter_map(|p| p.mask)
                    .collect()
            };
            let dm = masks_at(dec);
            let em = masks_at(enc);
            if !dm.is_empty() && !em.is_empty() && dm != em {
                let line = dec
                    .pairs
                    .iter()
                    .find(|p| p.shift == s && p.mask.is_some())
                    .map(|p| p.line)
                    .unwrap_or(1);
                findings.push(Finding::new(
                    path,
                    line,
                    "M2",
                    format!(
                        "field at shift {s}: decode_{suffix} masks with {dm:x?} but \
                         encode_{suffix} masks with {em:x?}"
                    ),
                ));
            }
        }
    }

    findings.sort();
    findings
}

/// One experiment module handed to [`check_registry`]: name (module path
/// stem), reporting path, and source text.
pub struct ExperimentModule<'a> {
    pub name: &'a str,
    pub path: &'a str,
    pub src: &'a str,
}

/// M3: every module declared in `experiments/mod.rs` is registered in the
/// survey registry and vice versa, and every module's `fn id()` returns a
/// unique string equal to its module name (the registry's documented
/// convention: "Stable identifier (the module name)").
pub fn check_registry(
    mod_path: &str,
    mod_src: &str,
    survey_path: &str,
    survey_src: &str,
    modules: &[ExperimentModule<'_>],
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // `pub mod NAME;` declarations.
    let mod_tokens = lex(mod_src).tokens;
    let mut declared: BTreeMap<String, u32> = BTreeMap::new();
    for w in mod_tokens.windows(4) {
        if as_ident(&w[0]) == Some("pub") && as_ident(&w[1]) == Some("mod") && is_punct(&w[3], ";")
        {
            if let Some(name) = as_ident(&w[2]) {
                declared.insert(name.to_string(), w[2].line);
            }
        }
    }
    if declared.is_empty() {
        findings.push(Finding::new(
            mod_path,
            1,
            "M3",
            "no `pub mod` declarations found — parser and file have diverged".to_string(),
        ));
        return findings;
    }

    // `experiments::NAME` references in the registry.
    let survey_tokens = lex(survey_src).tokens;
    let mut registered: BTreeMap<String, u32> = BTreeMap::new();
    for (i, t) in survey_tokens.iter().enumerate() {
        if as_ident(t) == Some("experiments")
            && survey_tokens.get(i + 1).is_some_and(|n| is_punct(n, "::"))
        {
            if let Some(name) = survey_tokens.get(i + 2).and_then(as_ident) {
                registered.entry(name.to_string()).or_insert(t.line);
            }
        }
    }

    for (name, line) in &declared {
        if !registered.contains_key(name) {
            findings.push(Finding::new(
                mod_path,
                *line,
                "M3",
                format!("experiment module `{name}` is never registered in the survey registry"),
            ));
        }
    }
    for (name, line) in &registered {
        if !declared.contains_key(name) {
            findings.push(Finding::new(
                survey_path,
                *line,
                "M3",
                format!("registry entry `experiments::{name}` has no module declaration"),
            ));
        }
    }

    // Per-module ids: present, equal to the module name, unique.
    let mut seen_ids: BTreeMap<String, String> = BTreeMap::new();
    for m in modules {
        let tokens = lex(m.src).tokens;
        let mut id: Option<(String, u32)> = None;
        for (i, t) in tokens.iter().enumerate() {
            if as_ident(t) == Some("fn") && tokens.get(i + 1).and_then(as_ident) == Some("id") {
                // The id body is `{ "literal" }` — take the first string
                // literal within the next few tokens.
                id = tokens[i..].iter().take(16).find_map(|t| match &t.kind {
                    TokenKind::Str(s) => Some((s.clone(), t.line)),
                    _ => None,
                });
                break;
            }
        }
        let Some((id, line)) = id else {
            if declared.contains_key(m.name) {
                findings.push(Finding::new(
                    m.path,
                    1,
                    "M3",
                    format!("module `{}` declares no `fn id()` string", m.name),
                ));
            }
            continue;
        };
        if id != m.name {
            findings.push(Finding::new(
                m.path,
                line,
                "M3",
                format!(
                    "experiment id \"{id}\" must equal its module name `{}` — the \
                     registry's stable-identifier convention",
                    m.name
                ),
            ));
        }
        if let Some(other) = seen_ids.get(&id) {
            findings.push(Finding::new(
                m.path,
                line,
                "M3",
                format!("experiment id \"{id}\" is already used by module `{other}`"),
            ));
        } else {
            seen_ids.insert(id, m.name.to_string());
        }
    }

    findings.sort();
    findings
}

/// A named struct field: its name, line, and every identifier appearing in
/// its type (`grant: PcuGrant` → `["PcuGrant"]`,
/// `rates: Option<CounterRates>` → `["Option", "CounterRates"]`). The type
/// identifiers let [`check_snapshots`] flatten snapshots that partition
/// their fields into plane-image substructs.
pub(crate) struct FieldDef {
    pub(crate) name: String,
    pub(crate) line: u32,
    pub(crate) type_idents: Vec<String>,
}

/// A struct definition: name, line, and its named fields.
pub(crate) struct StructDef {
    pub(crate) name: String,
    pub(crate) line: u32,
    pub(crate) fields: Vec<FieldDef>,
}

/// Extract every `struct Name { field: Ty, … }` definition. Tuple and unit
/// structs have no named fields and are skipped. Field names are the
/// identifiers followed by a single `:` at struct-brace depth 1 outside any
/// parens/brackets/generics — unambiguous because the lexer joins `::`
/// into one token. Identifiers between a field's `:` and its terminating
/// `,` are recorded as the field's type identifiers.
pub(crate) fn struct_defs(tokens: &[Token]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if as_ident(&tokens[i]) != Some("struct") {
            i += 1;
            continue;
        }
        let Some(name) = as_ident(&tokens[i + 1]) else {
            i += 1;
            continue;
        };
        let (name, line) = (name.to_string(), tokens[i + 1].line);
        // Walk over generics/where to the body `{`; `;` or `(` first means
        // a unit or tuple struct. Angle depth keeps `(` inside bounds like
        // `<F: Fn(u32)>` from ending the walk (`->` is one joined token).
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if is_punct(t, "<") {
                angle += 1;
            } else if is_punct(t, "<<") {
                angle += 2;
            } else if is_punct(t, ">") {
                angle -= 1;
            } else if is_punct(t, ">>") {
                angle -= 2;
            } else if angle == 0 && (is_punct(t, ";") || is_punct(t, "(")) {
                break;
            } else if angle == 0 && is_punct(t, "{") {
                body = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body else {
            i = j;
            continue;
        };
        let mut fields: Vec<FieldDef> = Vec::new();
        let (mut depth, mut paren, mut bracket, mut fangle) = (1usize, 0i32, 0i32, 0i32);
        // Whether we are between a field's `:` and its terminating `,` —
        // identifiers seen there belong to the field's type.
        let mut in_type = false;
        let mut k = open + 1;
        while k < tokens.len() && depth > 0 {
            let t = &tokens[k];
            if is_punct(t, "{") {
                depth += 1;
            } else if is_punct(t, "}") {
                depth -= 1;
            } else if is_punct(t, "(") {
                paren += 1;
            } else if is_punct(t, ")") {
                paren -= 1;
            } else if is_punct(t, "[") {
                bracket += 1;
            } else if is_punct(t, "]") {
                bracket -= 1;
            } else if is_punct(t, "<") {
                fangle += 1;
            } else if is_punct(t, "<<") {
                // The lexer joins shift operators, so `Vec<Vec<u8>>` closes
                // with a single `>>` token: count joined tokens as two.
                fangle += 2;
            } else if is_punct(t, ">") {
                fangle -= 1;
            } else if is_punct(t, ">>") {
                fangle -= 2;
            } else if in_type
                && depth == 1
                && paren == 0
                && bracket == 0
                && fangle == 0
                && is_punct(t, ",")
            {
                in_type = false;
            } else if depth == 1
                && paren == 0
                && bracket == 0
                && fangle == 0
                && !in_type
                && as_ident(t).is_some()
                && tokens.get(k + 1).is_some_and(|n| is_punct(n, ":"))
            {
                fields.push(FieldDef {
                    name: as_ident(t).unwrap().to_string(),
                    line: t.line,
                    type_idents: Vec::new(),
                });
                in_type = true;
                k += 2;
                continue;
            } else if in_type {
                if let (Some(id), Some(f)) = (as_ident(t), fields.last_mut()) {
                    f.type_idents.push(id.to_string());
                }
            }
            k += 1;
        }
        out.push(StructDef { name, line, fields });
        i = k;
    }
    out
}

/// A `// snap:skip(<why>)` marker: a field-level declaration that a piece
/// of state is deliberately not captured in the snapshot.
pub(crate) struct SkipMarker {
    pub(crate) line: u32,
    pub(crate) end_line: u32,
    pub(crate) justified: bool,
}

pub(crate) fn snap_skip_markers(comments: &[Comment]) -> Vec<SkipMarker> {
    comments
        .iter()
        .filter_map(|c| {
            // Doc comments contribute a leading `/` or `!` to the text.
            let t = c.text.trim_start_matches(['/', '!']).trim_start();
            let rest = t.strip_prefix("snap:skip(")?;
            let close = rest.rfind(')')?;
            Some(SkipMarker {
                line: c.line,
                end_line: c.end_line,
                justified: !rest[..close].trim().is_empty(),
            })
        })
        .collect()
}

/// Per-file parse results for [`check_snapshots`].
struct SnapshotScan {
    structs: Vec<StructDef>,
    markers: Vec<SkipMarker>,
}

/// Resolve the source struct `stem` for a snapshot defined in file
/// `snap_fi`: same file first, then the same crate, then anywhere (files
/// arrive path-sorted, so ties resolve deterministically).
fn find_source_struct<'a>(
    files: &[(String, String)],
    scans: &'a [SnapshotScan],
    snap_fi: usize,
    stem: &str,
) -> Option<(usize, &'a StructDef)> {
    if let Some(d) = scans[snap_fi].structs.iter().find(|d| d.name == stem) {
        return Some((snap_fi, d));
    }
    let crate_of = |p: &str| {
        let mut it = p.split('/');
        match (it.next(), it.next()) {
            (Some("crates"), Some(k)) => format!("crates/{k}"),
            (Some(first), _) => first.to_string(),
            _ => String::new(),
        }
    };
    let snap_crate = crate_of(&files[snap_fi].0);
    let candidates: Vec<(usize, &StructDef)> = scans
        .iter()
        .enumerate()
        .flat_map(|(fi, s)| s.structs.iter().map(move |d| (fi, d)))
        .filter(|(_, d)| d.name == stem)
        .collect();
    candidates
        .iter()
        .find(|(fi, _)| crate_of(&files[*fi].0) == snap_crate)
        .or_else(|| candidates.first())
        .copied()
}

/// Collect every field name reachable from `def` — its own fields plus,
/// transitively, the fields of any workspace struct named in a field's
/// type. This is what lets a snapshot partition its fields into plane
/// images (`SocketSnapshot { pstate: PStatePlaneImage { grant, … } }`)
/// and still count `grant` as captured. The visited set guards cycles.
fn covered_names(
    files: &[(String, String)],
    scans: &[SnapshotScan],
    fi: usize,
    def: &StructDef,
    visited: &mut BTreeSet<String>,
    out: &mut BTreeSet<String>,
) {
    if !visited.insert(def.name.clone()) {
        return;
    }
    for f in &def.fields {
        out.insert(f.name.clone());
        for ty in &f.type_idents {
            if let Some((tfi, tdef)) = find_source_struct(files, scans, fi, ty) {
                covered_names(files, scans, tfi, tdef, visited, out);
            }
        }
    }
}

/// M4: every struct with a plain-data `<X>Snapshot` companion must account
/// for each of its fields — captured by name in the snapshot (directly or
/// inside a plane-image substruct the snapshot embeds — see
/// [`covered_names`]), or marked with a justified `// snap:skip(<why>)` on
/// the field's line or the line directly above. This is the determinism
/// half of the warm-start contract: a stateful field silently missing
/// from the snapshot — or from the plane image that claims its plane — is
/// exactly how a forked sweep point diverges from its cold re-run.
pub fn check_snapshots(files: &[(String, String)]) -> Vec<Finding> {
    check_snapshots_with_usage(files).0
}

/// [`check_snapshots`], also reporting which justified `snap:skip`
/// markers suppressed a missing-field finding — `(file index, marker end
/// line)` pairs. The workspace pass flags justified markers that
/// suppressed nothing as stale (A2).
pub(crate) fn check_snapshots_with_usage(
    files: &[(String, String)],
) -> (Vec<Finding>, BTreeSet<(usize, u32)>) {
    let mut findings = Vec::new();
    let mut used = BTreeSet::new();
    let scans: Vec<SnapshotScan> = files
        .iter()
        .map(|(_, src)| {
            let lexed = lex(src);
            SnapshotScan {
                structs: struct_defs(&lexed.tokens),
                markers: snap_skip_markers(&lexed.comments),
            }
        })
        .collect();

    let mut any_snapshot = false;
    for (snap_fi, (snap_path, _)) in files.iter().enumerate() {
        for snap in &scans[snap_fi].structs {
            // A bare `Snapshot` (empty stem) names no source struct — the
            // telemetry sample type, not a state image.
            let Some(stem) = snap.name.strip_suffix("Snapshot").filter(|s| !s.is_empty()) else {
                continue;
            };
            any_snapshot = true;
            let Some((src_fi, src_def)) = find_source_struct(files, &scans, snap_fi, stem) else {
                findings.push(Finding::new(
                    snap_path,
                    snap.line,
                    "M4",
                    format!(
                        "`{}` has no source struct `{stem}` anywhere in the workspace — \
                         source renamed without updating its snapshot?",
                        snap.name
                    ),
                ));
                continue;
            };
            let mut snap_fields = BTreeSet::new();
            covered_names(
                files,
                &scans,
                snap_fi,
                snap,
                &mut BTreeSet::new(),
                &mut snap_fields,
            );
            let src_path = &files[src_fi].0;
            for FieldDef {
                name: fname,
                line: fline,
                ..
            } in &src_def.fields
            {
                if snap_fields.contains(fname) {
                    continue;
                }
                let marker = scans[src_fi].markers.iter().find(|m| {
                    (m.line <= *fline && *fline <= m.end_line) || m.end_line + 1 == *fline
                });
                match marker {
                    Some(m) if m.justified => {
                        used.insert((src_fi, m.end_line));
                    }
                    Some(m) => findings.push(Finding::new(
                        src_path,
                        m.end_line,
                        "M4",
                        format!(
                            "`{stem}.{fname}` has `snap:skip()` without a justification; \
                             write `// snap:skip(<why this state is rebuilt, not captured>)`"
                        ),
                    )),
                    None => findings.push(Finding::new(
                        src_path,
                        *fline,
                        "M4",
                        format!(
                            "`{stem}.{fname}` is not captured in `{}` and carries no \
                             `// snap:skip(<why>)` marker — a restored node would lose it",
                            snap.name
                        ),
                    )),
                }
            }
        }
    }

    if !any_snapshot {
        findings.push(Finding::new(
            ".",
            1,
            "M4",
            "no `*Snapshot` structs found in the scan set — snapshot layer moved or \
             renamed; parser and files have diverged"
                .to_string(),
        ));
    }

    findings.sort();
    (findings, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADDR_OK: &str = "pub const IA32_APERF: u32 = 0xE8;\npub const IA32_MPERF: u32 = 0xE7;\npub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;\n";
    const GATE_OK: &str = "use crate::addresses as a;\npub fn survey_allowlist() -> BTreeMap<u32, Permission> {\n    let mut m = BTreeMap::new();\n    for addr in [a::IA32_APERF, a::IA32_MPERF] {\n        m.insert(addr, Permission::READ_ONLY);\n    }\n    m.insert(a::MSR_PKG_ENERGY_STATUS, Permission::READ_ONLY);\n    m\n}\n";

    #[test]
    fn m1_clean_gate_passes() {
        assert!(check_addresses_and_gate("addr.rs", ADDR_OK, "gate.rs", GATE_OK).is_empty());
    }

    #[test]
    fn m1_catches_gate_reference_without_constant() {
        let gate = GATE_OK.replace("a::IA32_MPERF", "a::IA32_BOGUS");
        let f = check_addresses_and_gate("addr.rs", ADDR_OK, "gate.rs", &gate);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M1");
        assert!(f[0].message.contains("IA32_BOGUS"));
    }

    #[test]
    fn m1_catches_duplicate_addresses() {
        let addr = format!("{ADDR_OK}pub const MSR_SHADOW: u32 = 0x611;\n");
        let f = check_addresses_and_gate("addr.rs", &addr, "gate.rs", GATE_OK);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("0x611"));
        assert!(f[0].message.contains("MSR_PKG_ENERGY_STATUS"));
    }

    #[test]
    fn m1_catches_raw_address_in_allowlist() {
        let gate = GATE_OK.replace("m.insert(a::MSR_PKG_ENERGY_STATUS", "m.insert(0x611");
        let f = check_addresses_and_gate("addr.rs", ADDR_OK, "gate.rs", &gate);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("raw address"));
    }

    const FIELDS_OK: &str = "pub fn encode_uncore(min: u8, max: u8) -> u64 {\n    (max as u64 & 0x7F) | ((min as u64 & 0x7F) << 8)\n}\npub fn decode_uncore(value: u64) -> (u8, u8) {\n    (((value >> 8) & 0x7F) as u8, (value & 0x7F) as u8)\n}\n";

    #[test]
    fn m2_clean_pair_passes() {
        assert!(check_fields("fields.rs", FIELDS_OK).is_empty());
    }

    #[test]
    fn m2_catches_mask_mismatch() {
        let src = FIELDS_OK.replace("(value >> 8) & 0x7F", "(value >> 8) & 0x3F");
        let f = check_fields("fields.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M2");
        assert!(f[0].message.contains("shift 8"));
    }

    #[test]
    fn m2_catches_shift_mismatch() {
        let src = FIELDS_OK.replace("value >> 8", "value >> 9");
        let f = check_fields("fields.rs", &src);
        assert!(!f.is_empty(), "{f:?}");
        assert!(f.iter().any(|f| f.message.contains(">> 9")), "{f:?}");
    }

    #[test]
    fn m2_catches_out_of_range_shift_and_wide_mask() {
        let src = "fn encode_x(v: u64) -> u64 { (v & 0xFF) << 64 }\n";
        let f = check_fields("fields.rs", src);
        assert!(
            f.iter().any(|f| f.message.contains("out of range")),
            "{f:?}"
        );

        let src = "fn encode_y(v: u64) -> u64 { (v & 0x1FF) << 56 }\n";
        let f = check_fields("fields.rs", src);
        assert!(
            f.iter().any(|f| f.message.contains("exceeds 64 bits")),
            "{f:?}"
        );
    }

    #[test]
    fn m2_encode_without_mask_is_wildcard() {
        // `(x as u8 as u64) << 8` carries its mask in the type; the decode
        // side's explicit 0xFF must not be reported against it.
        let src = "fn encode_p(x: u8) -> u64 { (x as u64) << 8 }\nfn decode_p(v: u64) -> u8 { ((v >> 8) & 0xFF) as u8 }\n";
        assert!(check_fields("fields.rs", src).is_empty());
    }

    const MOD_OK: &str = "pub mod fig1;\npub mod fig2;\n";
    const SURVEY_OK: &str = "pub fn registry() -> Vec<Box<dyn SurveyExperiment>> {\n    vec![\n        Box::new(experiments::fig1::Experiment),\n        Box::new(experiments::fig2::Experiment),\n    ]\n}\n";

    fn module_src(id: &str) -> String {
        format!(
            "impl SurveyExperiment for Experiment {{\n    fn id(&self) -> &'static str {{\n        \"{id}\"\n    }}\n}}\n"
        )
    }

    #[test]
    fn m3_clean_registry_passes() {
        let (a, b) = (module_src("fig1"), module_src("fig2"));
        let mods = [
            ExperimentModule {
                name: "fig1",
                path: "fig1.rs",
                src: &a,
            },
            ExperimentModule {
                name: "fig2",
                path: "fig2.rs",
                src: &b,
            },
        ];
        assert!(check_registry("mod.rs", MOD_OK, "survey.rs", SURVEY_OK, &mods).is_empty());
    }

    #[test]
    fn m3_catches_unregistered_module() {
        let survey = SURVEY_OK.replace("Box::new(experiments::fig2::Experiment),\n", "");
        let (a, b) = (module_src("fig1"), module_src("fig2"));
        let mods = [
            ExperimentModule {
                name: "fig1",
                path: "fig1.rs",
                src: &a,
            },
            ExperimentModule {
                name: "fig2",
                path: "fig2.rs",
                src: &b,
            },
        ];
        let f = check_registry("mod.rs", MOD_OK, "survey.rs", &survey, &mods);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never registered"));
    }

    #[test]
    fn m3_catches_registry_entry_without_module() {
        let mods_src = "pub mod fig1;\n";
        let a = module_src("fig1");
        let mods = [ExperimentModule {
            name: "fig1",
            path: "fig1.rs",
            src: &a,
        }];
        let f = check_registry("mod.rs", mods_src, "survey.rs", SURVEY_OK, &mods);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no module declaration"));
    }

    #[test]
    fn m3_catches_duplicate_and_mismatched_ids() {
        let (a, b) = (module_src("fig1"), module_src("fig1"));
        let mods = [
            ExperimentModule {
                name: "fig1",
                path: "fig1.rs",
                src: &a,
            },
            ExperimentModule {
                name: "fig2",
                path: "fig2.rs",
                src: &b,
            },
        ];
        let f = check_registry("mod.rs", MOD_OK, "survey.rs", SURVEY_OK, &mods);
        assert!(
            f.iter()
                .any(|f| f.message.contains("must equal its module name")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|f| f.message.contains("already used")),
            "{f:?}"
        );
    }

    #[test]
    fn m3_catches_module_without_id() {
        let a = module_src("fig1");
        let b = "pub struct Experiment;\n".to_string();
        let mods = [
            ExperimentModule {
                name: "fig1",
                path: "fig1.rs",
                src: &a,
            },
            ExperimentModule {
                name: "fig2",
                path: "fig2.rs",
                src: &b,
            },
        ];
        let f = check_registry("mod.rs", MOD_OK, "survey.rs", SURVEY_OK, &mods);
        assert!(
            f.iter().any(|f| f.message.contains("no `fn id()`")),
            "{f:?}"
        );
    }

    // A clean source/snapshot pair: one captured field, one justified
    // skip, one field whose capture the seeded tests remove.
    const SNAP_OK: &str = "\
pub struct Engine<F: Fn(u32) -> u32> {
    ticks: u64,
    // snap:skip(construction-time constant, rebuilt by Engine::new)
    ratio: f64,
    queue: Vec<(u32, u64)>,
    hook: F,
}

#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    pub ticks: u64,
    pub queue: Vec<(u32, u64)>,
    pub hook: u32,
}
";

    fn snap_files(srcs: &[(&str, &str)]) -> Vec<(String, String)> {
        srcs.iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn m4_accepts_a_clean_pair() {
        let f = check_snapshots(&snap_files(&[("x.rs", SNAP_OK)]));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn m4_catches_an_uncaptured_unmarked_field() {
        let src = SNAP_OK.replace("    pub queue: Vec<(u32, u64)>,\n", "");
        let f = check_snapshots(&snap_files(&[("x.rs", &src)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M4");
        assert!(f[0].message.contains("`Engine.queue`"), "{f:?}");
    }

    #[test]
    fn m4_catches_a_skip_without_justification() {
        let src = SNAP_OK.replace(
            "snap:skip(construction-time constant, rebuilt by Engine::new)",
            "snap:skip()",
        );
        let f = check_snapshots(&snap_files(&[("x.rs", &src)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M4");
        assert!(f[0].message.contains("without a justification"), "{f:?}");
    }

    #[test]
    fn m4_catches_a_snapshot_without_a_source_struct() {
        let src = SNAP_OK.replace("pub struct Engine<", "pub struct Motor<");
        let f = check_snapshots(&snap_files(&[("x.rs", &src)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M4");
        assert!(f[0].message.contains("no source struct `Engine`"), "{f:?}");
    }

    #[test]
    fn m4_resolves_the_source_struct_across_files() {
        let source = "pub struct Engine {\n    ticks: u64,\n    scratch: Vec<u8>,\n}\n";
        let snap = "pub struct EngineSnapshot {\n    ticks: u64,\n}\n";
        let f = check_snapshots(&snap_files(&[("a.rs", source), ("b.rs", snap)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "a.rs");
        assert!(f[0].message.contains("`Engine.scratch`"), "{f:?}");
    }

    #[test]
    fn m4_covers_fleet_variation_structs_with_snapshot_companions() {
        // The fleet crate gets no exemption: if a variation struct ever
        // grows a snapshot companion (e.g. to carry a member's drawn
        // identity through a fork), its fields fall under the same
        // captured-or-justified audit as the node state.
        let variation = "\
pub struct ChipVariation {
    pub leak_scale: f64,
    pub vcorner_v: f64,
    scratch: Vec<f64>,
}
";
        let snap = "\
pub struct ChipVariationSnapshot {
    pub leak_scale: f64,
    pub vcorner_v: f64,
}
";
        let f = check_snapshots(&snap_files(&[
            ("crates/fleet/src/variation.rs", variation),
            ("crates/node/src/node.rs", snap),
        ]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M4");
        assert_eq!(f[0].path, "crates/fleet/src/variation.rs");
        assert!(f[0].message.contains("`ChipVariation.scratch`"), "{f:?}");
        // A justified skip clears it — the ordinary mechanism, not a
        // fleet-specific carve-out.
        let fixed = variation.replace(
            "    scratch: Vec<f64>,",
            "    // snap:skip(per-step scratch, rebuilt by the fork)\n    scratch: Vec<f64>,",
        );
        let f = check_snapshots(&snap_files(&[
            ("crates/fleet/src/variation.rs", &fixed),
            ("crates/node/src/node.rs", snap),
        ]));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn m4_accepts_a_trailing_skip_marker() {
        let src = "struct E {\n    a: u64,\n    b: u8, // snap:skip(scratch, rebuilt per step)\n}\nstruct ESnapshot {\n    a: u64,\n}\n";
        let f = check_snapshots(&snap_files(&[("x.rs", src)]));
        assert!(f.is_empty(), "{f:?}");
    }

    // A snapshot partitioned into plane-image substructs, as the node's
    // dirty-plane layout does: `grant` and `queue` are captured one level
    // down, `cores` through a `*Snapshot`-named plane of its own.
    const SNAP_PLANES: &str = "\
pub struct Engine {
    ticks: u64,
    grant: f64,
    queue: Vec<(u32, u64)>,
    cores: CorePlanes,
    // snap:skip(per-step scratch, rebuilt every tick)
    scratch: Vec<u8>,
}

pub struct CorePlanes {
    mhz: Vec<f64>,
    // snap:skip(cache derived from ticks, resynced on restore)
    busy: Vec<bool>,
}

pub struct CorePlanesSnapshot {
    mhz: Vec<f64>,
}

pub struct EngineSnapshot {
    ticks: u64,
    pstate: PStatePlaneImage,
    cores: CorePlanesSnapshot,
}

pub struct PStatePlaneImage {
    grant: f64,
    queue: Vec<(u32, u64)>,
}
";

    #[test]
    fn m4_flattens_plane_image_substructs() {
        let f = check_snapshots(&snap_files(&[("x.rs", SNAP_PLANES)]));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn m4_catches_a_field_missing_from_a_plane_image() {
        // Dropping `queue` from the plane image must fire on the *source*
        // field, exactly like dropping it from a flat snapshot: the plane
        // claimed the field's plane and silently stopped capturing it.
        let src = SNAP_PLANES.replace(
            "pub struct PStatePlaneImage {\n    grant: f64,\n    queue: Vec<(u32, u64)>,\n}",
            "pub struct PStatePlaneImage {\n    grant: f64,\n}",
        );
        let f = check_snapshots(&snap_files(&[("x.rs", &src)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M4");
        assert!(f[0].message.contains("`Engine.queue`"), "{f:?}");
    }

    #[test]
    fn m4_plane_flattening_survives_type_cycles() {
        // Mutually recursive plane types must not hang the flattener —
        // and must still surface the genuinely uncaptured field.
        let src = "\
pub struct Engine {
    ticks: u64,
    lost: u8,
}
pub struct EngineSnapshot {
    a: PlaneA,
}
pub struct PlaneA {
    ticks: u64,
    b: PlaneB,
}
pub struct PlaneB {
    a: PlaneA,
}
";
        let f = check_snapshots(&snap_files(&[("x.rs", src)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`Engine.lost`"), "{f:?}");
    }

    #[test]
    fn m4_ignores_the_bare_snapshot_type_and_tuple_structs() {
        // `Snapshot` (empty stem) is the telemetry sample type, and tuple
        // structs have no named fields to audit.
        let src = "pub struct Snapshot {\n    watts: f64,\n}\npub struct Pair(u32, u64);\n";
        let f = check_snapshots(&snap_files(&[("x.rs", src)]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no `*Snapshot` structs"), "{f:?}");
    }

    #[test]
    fn m4_reports_divergence_when_no_snapshots_exist() {
        let f = check_snapshots(&snap_files(&[("x.rs", "fn main() {}")]));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M4");
        assert!(f[0].message.contains("diverged"), "{f:?}");
    }
}
