//! Tier-1 (textual) rules and the `lint:allow` suppression machinery.
//!
//! | Rule | Meaning |
//! |---|---|
//! | D1 | no wall-clock or ambient randomness in result-producing crates |
//! | D2 | no `HashMap`/`HashSet` in result-producing crates |
//! | D3 | no order-sensitive float reduction over a parallel source |
//! | S1 | every `unsafe` must be preceded by a `// SAFETY:` comment |
//! | A1 | malformed `lint:allow` / `plane:dirty` directive |
//! | M5 | no pattern-match on `CpuGeneration` outside hwspec's policy layer |
//!
//! D1–D3 guard the determinism contract: `survey.json` must be
//! byte-identical for any `--jobs`, any `RAYON_NUM_THREADS` and either
//! engine. `Instant::now`/`SystemTime` values, `HashMap` iteration
//! order, and float reductions whose operand order follows scheduling
//! are exactly the ways wall-clock and scheduling leak into output. A
//! finding is suppressed by a justified `// lint:allow(rule): <why>`
//! comment on the same line or the line directly above; an allow
//! *without* a justification suppresses nothing and is itself reported
//! (A1). A justified allow that suppresses *nothing* is stale and
//! reported by the workspace pass as A2.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// Every rule the engine knows, for allow-directive validation.
pub const KNOWN_RULES: &[&str] = &[
    "D1", "D2", "D3", "S1", "A1", "A2", "M1", "M2", "M3", "M4", "M5", "M6", "P1",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id ("D1", "M2", …).
    pub rule: &'static str,
    pub message: String,
    /// Byte offset of the offending token in the file (0 when unknown).
    pub byte: u32,
    /// Byte length of the offending token (0 when unknown).
    pub len: u32,
}

impl Finding {
    pub fn new(path: &str, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message,
            byte: 0,
            len: 0,
        }
    }

    /// Attach a byte span (offset + length) to the finding.
    pub fn with_span(mut self, byte: u32, len: u32) -> Finding {
        self.byte = byte;
        self.len = len;
        self
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// The file belongs to a result-producing crate (D1/D2 apply).
    pub result_crate: bool,
    /// The file is part of hwspec's generation-policy layer, the one place
    /// allowed to dispatch on `CpuGeneration` (M5 exempt).
    pub generation_policy: bool,
}

/// A parsed `lint:allow` directive.
#[derive(Debug, Clone)]
pub(crate) struct Allow {
    pub(crate) line: u32,
    pub(crate) byte: u32,
    pub(crate) len: u32,
    pub(crate) rule: String,
    pub(crate) justified: bool,
    /// Set by [`suppress`] when the allow actually removed a finding;
    /// a justified allow that stays unused is stale (A2).
    pub(crate) used: bool,
}

/// Extract `lint:allow(rule): justification` directives from comments. The
/// directive must start the comment (`// lint:allow(…)`) — prose that merely
/// *mentions* the syntax mid-sentence is not a suppression attempt.
pub(crate) fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // Doc comments contribute a leading `/` or `!` to the text.
        let t = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = t.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let justified = rest[close + 1..]
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        allows.push(Allow {
            line: c.end_line,
            byte: c.byte,
            len: c.len,
            rule,
            justified,
            used: false,
        });
    }
    allows
}

/// A parsed `// plane:dirty(MSR|WORK): justification` annotation — a
/// method-level declaration (for rule M6) that the function's mutations
/// are covered by an external marking of the named planes. Plane-*name*
/// validation needs the workspace mask-const table and happens in the
/// semantic pass; syntax validation happens here.
#[derive(Debug, Clone)]
pub(crate) struct PlaneAnn {
    pub(crate) line: u32,
    pub(crate) byte: u32,
    pub(crate) len: u32,
    /// The `|`-separated plane names inside the parentheses.
    pub(crate) planes: Vec<String>,
    pub(crate) justified: bool,
    /// Syntax error text when the directive is malformed (A1).
    pub(crate) malformed: Option<String>,
    /// Set by the semantic pass when the annotation covered a mutation
    /// that would otherwise be an M6 finding.
    pub(crate) used: bool,
}

/// Extract `plane:dirty(…)` annotations from comments. Like allows, the
/// directive must start the comment.
pub(crate) fn parse_plane_anns(comments: &[Comment]) -> Vec<PlaneAnn> {
    let mut anns = Vec::new();
    for c in comments {
        let t = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = t.strip_prefix("plane:dirty") else {
            continue;
        };
        let mut ann = PlaneAnn {
            line: c.end_line,
            byte: c.byte,
            len: c.len,
            planes: Vec::new(),
            justified: false,
            malformed: None,
            used: false,
        };
        let body = rest
            .strip_prefix('(')
            .and_then(|r| r.find(')').map(|close| (&r[..close], &r[close + 1..])));
        match body {
            None => {
                ann.malformed = Some(
                    "plane:dirty needs a parenthesized mask: \
                     `// plane:dirty(MSR|WORK): <why the marking happens elsewhere>`"
                        .to_string(),
                );
            }
            Some((mask, tail)) => {
                let names: Vec<&str> = mask.split('|').map(str::trim).collect();
                let bad = names.iter().find(|n| {
                    n.is_empty() || !n.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
                });
                if let Some(bad) = bad {
                    ann.malformed = Some(format!(
                        "plane:dirty mask has a malformed segment `{bad}`; \
                         use `|`-separated plane-const names like `MSR|WORK`"
                    ));
                } else {
                    ann.planes = names.iter().map(|n| n.to_string()).collect();
                }
                ann.justified = tail
                    .strip_prefix(':')
                    .map(|j| !j.trim().is_empty())
                    .unwrap_or(false);
                if ann.malformed.is_none() && !ann.justified {
                    ann.malformed = Some(
                        "plane:dirty without a justification declares nothing; \
                         write `// plane:dirty(<MASK>): <why the marking happens elsewhere>`"
                            .to_string(),
                    );
                }
            }
        }
        anns.push(ann);
    }
    anns
}

/// Run the tier-1 rules over one file, *without* applying suppressions.
pub(crate) fn tier1_findings(path: &str, lexed: &Lexed, scope: FileScope) -> Vec<Finding> {
    let mut findings = Vec::new();
    if scope.result_crate {
        check_d1(path, &lexed.tokens, &mut findings);
        check_d2(path, &lexed.tokens, &mut findings);
        check_d3(path, &lexed.tokens, &mut findings);
    }
    check_s1(path, lexed, &mut findings);
    if !scope.generation_policy {
        check_m5(path, &lexed.tokens, &mut findings);
    }
    findings
}

/// Apply suppressions: a justified allow covers findings of its rule on
/// its own line (trailing comment) and on the line below (standalone
/// comment above the code). Marks each allow that removed a finding as
/// `used` so the workspace pass can flag stale ones (A2).
pub(crate) fn suppress(findings: &mut Vec<Finding>, allows: &mut [Allow]) {
    findings.retain(|f| {
        let mut hit = false;
        for a in allows.iter_mut() {
            if a.justified && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                hit = true;
            }
        }
        !hit
    });
}

/// A1 findings for malformed directives — never themselves suppressible.
pub(crate) fn directive_findings(path: &str, allows: &[Allow], anns: &[PlaneAnn]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for a in allows {
        if !KNOWN_RULES.contains(&a.rule.as_str()) {
            findings.push(
                Finding::new(
                    path,
                    a.line,
                    "A1",
                    format!(
                        "lint:allow names unknown rule `{}` (known: {})",
                        a.rule,
                        KNOWN_RULES.join(", ")
                    ),
                )
                .with_span(a.byte, a.len),
            );
        } else if !a.justified {
            findings.push(
                Finding::new(
                    path,
                    a.line,
                    "A1",
                    format!(
                        "lint:allow({}) without a justification suppresses nothing; \
                         write `// lint:allow({}): <why this is sound>`",
                        a.rule, a.rule
                    ),
                )
                .with_span(a.byte, a.len),
            );
        }
    }
    for ann in anns {
        if let Some(err) = &ann.malformed {
            findings
                .push(Finding::new(path, ann.line, "A1", err.clone()).with_span(ann.byte, ann.len));
        }
    }
    findings
}

/// Run the tier-1 rules over one file and apply per-line suppressions.
/// The workspace pass uses the pieces ([`tier1_findings`], [`suppress`],
/// [`directive_findings`]) directly so it can also track *stale* allows
/// (A2); this wrapper is the single-file entry point (`--check-file`).
pub fn scan_file(path: &str, src: &str, scope: FileScope) -> Vec<Finding> {
    let lexed = lex(src);
    let mut allows = parse_allows(&lexed.comments);
    let anns = parse_plane_anns(&lexed.comments);
    let mut findings = tier1_findings(path, &lexed, scope);
    suppress(&mut findings, &mut allows);
    findings.extend(directive_findings(path, &allows, &anns));
    findings.sort();
    findings
}

/// Is token `i` the start of the identifier path `parts` (joined by `::`)?
fn matches_path(tokens: &[Token], i: usize, parts: &[&str]) -> bool {
    let mut k = i;
    for (n, part) in parts.iter().enumerate() {
        if n > 0 {
            match tokens.get(k) {
                Some(Token {
                    kind: TokenKind::Punct("::"),
                    ..
                }) => k += 1,
                _ => return false,
            }
        }
        match tokens.get(k) {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if s == part => k += 1,
            _ => return false,
        }
    }
    true
}

/// D1: wall-clock and ambient-randomness sources. Any value of
/// `Instant::now()` or `SystemTime` differs run to run, and
/// `thread_rng`/`rand::random` seed from the OS — none of them may feed a
/// result path.
fn check_d1(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let hit = if matches_path(tokens, i, &["Instant", "now"]) {
            Some("Instant::now")
        } else if matches_path(tokens, i, &["rand", "random"]) {
            Some("rand::random")
        } else {
            match &t.kind {
                TokenKind::Ident(s) if s == "SystemTime" => Some("SystemTime"),
                TokenKind::Ident(s) if s == "thread_rng" => Some("thread_rng"),
                _ => None,
            }
        };
        if let Some(what) = hit {
            findings.push(Finding::new(
                path,
                t.line,
                "D1",
                format!(
                    "`{what}` in a result-producing crate: wall-clock/ambient entropy \
                     breaks the byte-identical survey.json contract"
                ),
            ));
        }
    }
}

/// D2: unordered collections. `HashMap`/`HashSet` iteration order is
/// randomized per process; iterating one into serialized output is exactly
/// how nondeterminism leaks into `survey.json`. Use `BTreeMap`/`BTreeSet`.
fn check_d2(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for t in tokens {
        if let TokenKind::Ident(s) = &t.kind {
            if s == "HashMap" || s == "HashSet" {
                findings.push(Finding::new(
                    path,
                    t.line,
                    "D2",
                    format!(
                        "`{s}` in a result-producing crate: unordered iteration leaks \
                         scheduling into output; use BTree{} instead",
                        &s[4..]
                    ),
                ));
            }
        }
    }
}

/// Parallel-source adapters: anything downstream of one of these has
/// scheduling-dependent element order.
const D3_PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_windows",
    "par_bridge",
    "par_extend",
];

/// Reduction combinators whose float result depends on operand order.
const D3_REDUCERS: &[&str] = &[
    "sum",
    "product",
    "fold",
    "reduce",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// D3: order-sensitive float reductions. Float addition is not
/// associative, so `par_iter().….sum()` produces different bytes run to
/// run as the scheduler regroups operands — the survey's sweep executor
/// instead collects per-point results *in index order* and reduces
/// sequentially. Also flags `partial_cmp(…).unwrap()` comparators, whose
/// NaN panic and asymmetric ordering break reductions; use
/// `f64::total_cmp`.
fn check_d3(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let ident = |i: usize| match tokens.get(i) {
        Some(Token {
            kind: TokenKind::Ident(s),
            ..
        }) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize, p: &str| matches!(tokens.get(i), Some(Token { kind: TokenKind::Punct(q), .. }) if *q == p);
    for (i, t) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        // `.reducer(` / `.reducer::<T>(` at the end of a chain containing a
        // parallel source.
        if D3_REDUCERS.contains(&name.as_str())
            && i > 0
            && punct(i - 1, ".")
            && (punct(i + 1, "(") || punct(i + 1, "::"))
        {
            // Walk the chain backwards to the start of the statement or
            // enclosing expression, collecting identifiers.
            let mut depth = 0i32;
            let mut k = i - 1;
            let mut par_source = false;
            while k > 0 {
                k -= 1;
                match &tokens[k].kind {
                    TokenKind::Punct(")") | TokenKind::Punct("]") => depth += 1,
                    TokenKind::Punct("(") | TokenKind::Punct("[") => {
                        if depth == 0 {
                            break; // chain began inside this group
                        }
                        depth -= 1;
                    }
                    TokenKind::Punct(";")
                    | TokenKind::Punct("{")
                    | TokenKind::Punct("}")
                    | TokenKind::Punct(",")
                    | TokenKind::Punct("=")
                        if depth == 0 =>
                    {
                        break;
                    }
                    TokenKind::Ident(id) if depth == 0 && D3_PAR_SOURCES.contains(&id.as_str()) => {
                        par_source = true;
                        break;
                    }
                    _ => {}
                }
            }
            if par_source {
                findings.push(
                    Finding::new(
                        path,
                        t.line,
                        "D3",
                        format!(
                            "`.{name}(…)` over a parallel source: float reduction order \
                             follows the scheduler, breaking byte-identical output; \
                             collect per-point results in index order (as the sweep \
                             executor does) and reduce sequentially"
                        ),
                    )
                    .with_span(t.byte, t.len),
                );
            }
        }
        // `partial_cmp(…).unwrap()` / `.expect(…)` comparator.
        if name == "partial_cmp" && punct(i + 1, "(") {
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < tokens.len() {
                if punct(k, "(") {
                    depth += 1;
                } else if punct(k, ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            if punct(k + 1, ".") && matches!(ident(k + 2), Some("unwrap") | Some("expect")) {
                findings.push(
                    Finding::new(
                        path,
                        t.line,
                        "D3",
                        "`partial_cmp(…).unwrap()` comparator: panics on NaN and its \
                         ordering is not total; use `f64::total_cmp` instead"
                            .to_string(),
                    )
                    .with_span(t.byte, t.len),
                );
            }
        }
    }
}

/// M5: generation dispatch belongs to the policy layer. A `match` arm, an
/// `if let`/`while let` pattern, or a `matches!` pattern naming
/// `CpuGeneration` outside `crates/hwspec` hardcodes firmware behavior at
/// the call site; route it through `FirmwarePolicy` instead. The check is
/// token-positional — `CpuGeneration::…` *expressions* (constructing or
/// comparing values) are fine, only pattern positions are flagged — and
/// reports one finding per dispatch site so a single justified
/// `// lint:allow(M5): <why>` directly above the `match`/`if` covers it.
fn check_m5(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let flag = |findings: &mut Vec<Finding>, line: u32, what: &str| {
        findings.push(Finding::new(
            path,
            line,
            "M5",
            format!(
                "{what} on `CpuGeneration` outside the hwspec policy layer: \
                 dispatch through `FirmwarePolicy` (crates/hwspec/src/policy.rs) \
                 so new generations land in one place"
            ),
        ));
    };
    let ident = |i: usize| match tokens.get(i) {
        Some(Token {
            kind: TokenKind::Ident(s),
            ..
        }) => Some(s.as_str()),
        _ => None,
    };
    let punct = |i: usize| match tokens.get(i) {
        Some(Token {
            kind: TokenKind::Punct(p),
            ..
        }) => Some(*p),
        _ => None,
    };
    let open = |p: &str| matches!(p, "(" | "[" | "{");
    let close = |p: &str| matches!(p, ")" | "]" | "}");

    for (i, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Ident(kw) if kw == "match" => {
                // Find the arm block (struct literals cannot appear bare in
                // scrutinee position, so the first depth-0 `{` opens it).
                let mut depth = 0i32;
                let mut j = i + 1;
                let body = loop {
                    match punct(j) {
                        Some(p) if open(p) => {
                            if p == "{" && depth == 0 {
                                break j;
                            }
                            depth += 1;
                        }
                        Some(p) if close(p) => depth -= 1,
                        None if j >= tokens.len() => break usize::MAX,
                        _ => {}
                    }
                    j += 1;
                };
                if body == usize::MAX {
                    continue;
                }
                // Inside the block, `CpuGeneration` right after `{`, `,` or
                // `|` at arm depth is a pattern.
                let mut depth = 1i32;
                let mut k = body + 1;
                while k < tokens.len() && depth > 0 {
                    if let Some(p) = punct(k) {
                        if open(p) {
                            depth += 1;
                        } else if close(p) {
                            depth -= 1;
                        }
                    } else if depth == 1
                        && ident(k) == Some("CpuGeneration")
                        && matches!(punct(k - 1), Some("{" | "," | "|"))
                    {
                        flag(findings, t.line, "`match`");
                        break;
                    }
                    k += 1;
                }
            }
            TokenKind::Ident(kw) if kw == "if" || kw == "while" => {
                if ident(i + 1) != Some("let") {
                    continue;
                }
                // The pattern runs to the `=` before the scrutinee.
                let mut k = i + 2;
                while let Some(tok) = tokens.get(k) {
                    match &tok.kind {
                        TokenKind::Punct("=") => break,
                        TokenKind::Punct("{") => break, // malformed; stop
                        TokenKind::Ident(s) if s == "CpuGeneration" => {
                            flag(findings, t.line, format!("`{kw} let`").as_str());
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            TokenKind::Ident(kw) if kw == "matches" => {
                if punct(i + 1) != Some("!") || punct(i + 2) != Some("(") {
                    continue;
                }
                // The pattern is everything after the first top-level comma.
                let mut depth = 1i32;
                let mut k = i + 3;
                let mut in_pattern = false;
                while k < tokens.len() && depth > 0 {
                    if let Some(p) = punct(k) {
                        if open(p) {
                            depth += 1;
                        } else if close(p) {
                            depth -= 1;
                        } else if p == "," && depth == 1 {
                            in_pattern = true;
                        }
                    } else if in_pattern && ident(k) == Some("CpuGeneration") {
                        flag(findings, t.line, "`matches!`");
                        break;
                    }
                    k += 1;
                }
            }
            _ => {}
        }
    }
}

/// S1: every `unsafe` must be preceded by a `SAFETY:` comment — on the
/// same line, or in the contiguous comment block ending on the line above.
fn check_s1(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        let TokenKind::Ident(s) = &t.kind else {
            continue;
        };
        if s != "unsafe" {
            continue;
        }
        if !has_safety_comment(&lexed.comments, t.line) {
            findings.push(Finding::new(
                path,
                t.line,
                "S1",
                "`unsafe` without a `// SAFETY:` comment explaining why the \
                 invariants hold"
                    .to_string(),
            ));
        }
    }
}

fn has_safety_comment(comments: &[Comment], unsafe_line: u32) -> bool {
    let covering = |line: u32| {
        comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    };
    // A comment on the `unsafe` line itself counts (trailing or inline).
    if covering(unsafe_line).any(|c| c.text.contains("SAFETY:")) {
        return true;
    }
    // Otherwise walk the contiguous run of commented lines directly above.
    let mut line = unsafe_line.saturating_sub(1);
    while line > 0 {
        let mut any = false;
        for c in covering(line) {
            any = true;
            if c.text.contains("SAFETY:") {
                return true;
            }
        }
        if !any {
            return false;
        }
        line -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const RESULT: FileScope = FileScope {
        result_crate: true,
        generation_policy: false,
    };
    const EXEMPT: FileScope = FileScope {
        result_crate: false,
        generation_policy: false,
    };
    const POLICY: FileScope = FileScope {
        result_crate: true,
        generation_policy: true,
    };

    #[test]
    fn d1_flags_instant_now_and_friends() {
        let src = "fn f() { let t = Instant::now(); let r: u8 = rand::random(); }";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "D1"));
    }

    #[test]
    fn d1_ignores_the_import_line_and_strings() {
        let src = "use std::time::Instant;\nlet s = \"Instant::now\"; // Instant::now";
        assert!(scan_file("x.rs", src, RESULT).is_empty());
    }

    #[test]
    fn d2_flags_hash_collections_only_in_result_crates() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u64> = HashMap::new();";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|f| f.rule == "D2"));
        assert!(scan_file("x.rs", src, EXEMPT).is_empty());
    }

    #[test]
    fn d2_accepts_btreemap() {
        let src = "use std::collections::BTreeMap;\nlet m: BTreeMap<u32, u64> = BTreeMap::new();";
        assert!(scan_file("x.rs", src, RESULT).is_empty());
    }

    #[test]
    fn s1_requires_a_safety_comment() {
        let bad = "fn f() { unsafe { g() } }";
        let f = scan_file("x.rs", bad, EXEMPT);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "S1");

        let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}";
        assert!(scan_file("x.rs", good, EXEMPT).is_empty());
    }

    #[test]
    fn s1_accepts_multiline_safety_blocks_ending_above() {
        let good = "fn f() {\n    // SAFETY: the borrow is pinned by the caller\n    // and outlives the task.\n    unsafe { g() }\n}";
        assert!(scan_file("x.rs", good, EXEMPT).is_empty());
    }

    #[test]
    fn m5_flags_a_match_arm_on_cpu_generation() {
        let src = "fn f(g: CpuGeneration) -> u32 {\n    match g {\n        CpuGeneration::HaswellEp => 500,\n        _ => 1000,\n    }\n}";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M5");
        assert_eq!(f[0].line, 2, "anchored at the match site");
    }

    #[test]
    fn m5_flags_if_let_and_matches_macro() {
        let if_let =
            "fn f(g: CpuGeneration) {\n    if let CpuGeneration::SkylakeSp = g { fast() }\n}";
        let f = scan_file("x.rs", if_let, RESULT);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M5");

        let mac = "let hsw = matches!(spec.generation, CpuGeneration::HaswellEp | CpuGeneration::HaswellHe);";
        let f = scan_file("x.rs", mac, RESULT);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "M5");
    }

    #[test]
    fn m5_ignores_expression_uses_of_the_enum() {
        // Constructing, comparing, or iterating generations is fine — only
        // *dispatching behavior* on them is the policy layer's job.
        let src = "fn f() -> CpuGeneration {\n    let g = CpuGeneration::HaswellEp;\n    for x in CpuGeneration::ALL { use_it(x); }\n    g\n}";
        assert!(scan_file("x.rs", src, RESULT).is_empty());

        // An arm *producing* a generation is not a dispatch on one.
        let produce = "match name {\n    \"hsw\" => CpuGeneration::HaswellEp,\n    _ => CpuGeneration::SkylakeSp,\n}";
        assert!(scan_file("x.rs", produce, RESULT).is_empty());
    }

    #[test]
    fn m5_applies_outside_result_crates_but_not_in_the_policy_layer() {
        let src = "match g {\n    CpuGeneration::WestmereEp => 0,\n    _ => 1,\n}";
        // A test or tool dispatching on generation drifts just as badly.
        assert_eq!(scan_file("x.rs", src, EXEMPT).len(), 1);
        // hwspec's policy modules are the sanctioned home.
        assert!(scan_file("x.rs", src, POLICY).is_empty());
    }

    #[test]
    fn m5_allow_directly_above_the_match_suppresses_the_site() {
        let src = "fn f(g: CpuGeneration) -> u32 {\n    // lint:allow(M5): fixture table, not firmware behavior\n    match g {\n        CpuGeneration::HaswellEp => 1,\n        _ => 0,\n    }\n}";
        assert!(scan_file("x.rs", src, RESULT).is_empty());

        // …but an unjustified allow suppresses nothing.
        let bare = "fn f(g: CpuGeneration) -> u32 {\n    // lint:allow(M5)\n    match g {\n        CpuGeneration::HaswellEp => 1,\n        _ => 0,\n    }\n}";
        let f = scan_file("x.rs", bare, RESULT);
        assert!(f.iter().any(|f| f.rule == "M5"), "{f:?}");
        assert!(f.iter().any(|f| f.rule == "A1"), "{f:?}");
    }

    #[test]
    fn justified_allow_suppresses_same_line_and_next_line() {
        let same = "let m = HashMap::new(); // lint:allow(D2): test-only scratch map";
        assert!(scan_file("x.rs", same, RESULT).is_empty());

        let above =
            "// lint:allow(D2): scratch map, never iterated into output\nlet m = HashMap::new();";
        assert!(scan_file("x.rs", above, RESULT).is_empty());
    }

    #[test]
    fn unjustified_allow_suppresses_nothing_and_is_flagged() {
        let src = "let m = HashMap::new(); // lint:allow(D2)";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == "D2"));
        assert!(f.iter().any(|f| f.rule == "A1"));

        let colon_only = "let m = HashMap::new(); // lint:allow(D2):   ";
        let f = scan_file("x.rs", colon_only, RESULT);
        assert!(f.iter().any(|f| f.rule == "A1"));
    }

    #[test]
    fn prose_mentioning_the_directive_is_not_an_allow() {
        // Docs that *describe* the syntax (like this crate's own) must not
        // parse as malformed suppression attempts.
        let src = "// Suppress with `lint:allow(rule): <why>` on the line above.\nlet x = 1;";
        assert!(scan_file("x.rs", src, RESULT).is_empty());
    }

    #[test]
    fn allow_for_an_unknown_rule_is_flagged() {
        let src = "// lint:allow(D9): no such rule\nlet x = 1;";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A1");
    }

    #[test]
    fn allow_does_not_leak_to_other_rules_or_distant_lines() {
        let src = "// lint:allow(D1): wrong rule\nlet m = HashMap::new();";
        let f = scan_file("x.rs", src, RESULT);
        assert!(f.iter().any(|f| f.rule == "D2"), "{f:?}");

        let far = "// lint:allow(D2): too far away\n\nlet m = HashMap::new();";
        let f = scan_file("x.rs", far, RESULT);
        assert!(f.iter().any(|f| f.rule == "D2"), "{f:?}");
    }

    #[test]
    fn d3_flags_reductions_over_parallel_sources() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D3");
        assert!(f[0].message.contains("parallel source"), "{}", f[0].message);

        // `fold` with an explicit identity over a chunked source too.
        let src = "fn g(xs: &[f64]) -> f64 {\n    xs.par_chunks(8).map(sum8).fold(|| 0.0, |a, b| a + b).sum()\n}";
        let f = scan_file("x.rs", src, RESULT);
        assert!(f.iter().any(|f| f.rule == "D3" && f.line == 2), "{f:?}");
    }

    #[test]
    fn d3_accepts_index_order_reductions_and_collects() {
        // Sequential iterators reduce in index order: fine.
        let seq = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(scan_file("x.rs", seq, RESULT).is_empty());
        // The sanctioned pattern: collect in index order, reduce after.
        let collected = "fn g(xs: &[P]) -> Vec<f64> { xs.par_iter().map(run).collect::<Vec<_>>() }";
        assert!(scan_file("x.rs", collected, RESULT).is_empty());
        // Non-result crates may reduce however they like.
        let f = scan_file(
            "x.rs",
            "fn f(xs: &[f64]) -> f64 { xs.par_iter().sum::<f64>() }",
            EXEMPT,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d3_flags_partial_cmp_unwrap_comparators() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let f = scan_file("x.rs", src, RESULT);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D3");
        assert!(f[0].message.contains("total_cmp"), "{}", f[0].message);
        // `total_cmp` itself is the fix and must pass.
        let fixed = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(scan_file("x.rs", fixed, RESULT).is_empty());
    }

    #[test]
    fn malformed_plane_dirty_annotations_are_a1() {
        // No parenthesized mask at all.
        let f = scan_file("x.rs", "// plane:dirty MSR: prose\nlet x = 1;", RESULT);
        assert!(
            f.iter()
                .any(|f| f.rule == "A1" && f.message.contains("parenthesized")),
            "{f:?}"
        );
        // A bad segment inside the mask.
        let f = scan_file(
            "x.rs",
            "// plane:dirty(MSR|): trailing pipe\nlet x = 1;",
            RESULT,
        );
        assert!(
            f.iter()
                .any(|f| f.rule == "A1" && f.message.contains("malformed segment")),
            "{f:?}"
        );
        // A mask without a justification declares nothing.
        let f = scan_file("x.rs", "// plane:dirty(MSR)\nlet x = 1;", RESULT);
        assert!(
            f.iter()
                .any(|f| f.rule == "A1" && f.message.contains("justification")),
            "{f:?}"
        );
        // The well-formed full syntax is silent at file scope (staleness is
        // the workspace pass's A2 business, not A1's).
        let f = scan_file(
            "x.rs",
            "// plane:dirty(MSR|WORK): marked by the caller\nlet x = 1;",
            RESULT,
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
