//! Deliberately-bad fixture for the hsw-lint end-to-end test. This file is
//! NOT compiled (it lives under tests/fixtures/, which the workspace scan
//! skips) — it exists to be linted via `hsw-lint --check-file`.

use std::collections::HashMap;
use std::time::Instant;

pub fn nondeterministic_result() -> f64 {
    // D1: wall clock in a result path.
    let t0 = Instant::now();
    // D2: unordered map iterated into output.
    let mut m: HashMap<u32, f64> = HashMap::new();
    m.insert(1, t0.elapsed().as_secs_f64());
    m.values().sum()
}

pub fn undocumented_unsafe(bytes: &[u8]) -> &str {
    // S1: undocumented unsafe block.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

pub fn unjustified_allow() -> u32 {
    let m: HashMap<u32, u32> = HashMap::new(); // lint:allow(D2)
    m.len() as u32
}

pub fn scheduler_ordered_reduction(xs: &[f64]) -> f64 {
    // D3: float reduction over a parallel source follows scheduler order.
    xs.par_iter().map(|x| x * 2.0).sum::<f64>()
}

pub fn nan_partial_comparator(v: &mut [f64]) {
    // D3: partial_cmp comparator panics on NaN and is not a total order.
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn false_positive_bait() {
    // None of these may be flagged: the names live in literals.
    let _s = "Instant::now HashMap unsafe";
    let _r = r#"SystemTime // thread_rng"#;
    let _c = 'H';
}
