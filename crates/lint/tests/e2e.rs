//! End-to-end tests: the `hsw-lint` binary against the bad fixture (must
//! flag and exit nonzero) and against the real workspace (must be clean).

use std::path::Path;
use std::process::Command;

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn bad_fixture_is_flagged_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_hsw-lint"))
        .args(["--check-file", &fixture("bad.rs")])
        .output()
        .expect("run hsw-lint");
    assert!(
        !out.status.success(),
        "hsw-lint accepted the bad fixture: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for (rule, needle) in [
        ("D1", "Instant::now"),
        ("D2", "HashMap"),
        ("D3", "parallel source"),
        ("D3", "total_cmp"),
        ("S1", "SAFETY"),
        ("A1", "justification"),
    ] {
        assert!(
            stdout
                .lines()
                .any(|l| l.contains(&format!(" {rule}: ")) && l.contains(needle)),
            "missing {rule} finding mentioning {needle:?} in:\n{stdout}"
        );
    }
    // The literal-bait function at the bottom (line 37 on) must not be
    // flagged: its trigger words all live inside string/char literals.
    for line in stdout.lines() {
        let n: u32 = line
            .split(':')
            .nth(1)
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable finding line: {line}"));
        assert!(n < 37, "flagged inside the literal-bait block:\n{stdout}");
    }
    // Findings are path:line: rule: message.
    assert!(
        stdout.lines().all(|l| l.contains("bad.rs:")),
        "unexpected finding format:\n{stdout}"
    );
}

#[test]
fn bad_fixture_json_mode_lists_the_same_findings() {
    let text = Command::new(env!("CARGO_BIN_EXE_hsw-lint"))
        .args(["--check-file", &fixture("bad.rs")])
        .output()
        .expect("run hsw-lint");
    let json = Command::new(env!("CARGO_BIN_EXE_hsw-lint"))
        .args(["--check-file", &fixture("bad.rs"), "--json"])
        .output()
        .expect("run hsw-lint --json");
    assert!(!json.status.success());
    let text_count = String::from_utf8_lossy(&text.stdout).lines().count();
    let json_str = String::from_utf8_lossy(&json.stdout);
    let json_count = json_str.matches("\"rule\":").count();
    assert_eq!(text_count, json_count, "{json_str}");
    assert!(json_str.trim_start().starts_with('['));
}

#[test]
fn the_real_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .display()
        .to_string();
    let out = Command::new(env!("CARGO_BIN_EXE_hsw-lint"))
        .args(["--root", &root])
        .output()
        .expect("run hsw-lint");
    assert!(
        out.status.success(),
        "workspace has findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_hsw-lint"))
        .arg("--frobnicate")
        .output()
        .expect("run hsw-lint");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn cached_workspace_lint_stays_fast() {
    // CI runs the lint on every push; the content-hash cache keeps the
    // warm path to a digest check plus replay. Guard the budget: a warm
    // full-workspace run must finish well under 2 s even on a loaded box.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .display()
        .to_string();
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_hsw-lint"))
            .args(["--root", &root])
            .output()
            .expect("run hsw-lint")
    };
    let cold = run(); // populate (or refresh) the cache
    assert!(cold.status.success());
    let t0 = std::time::Instant::now();
    let warm = run();
    let elapsed = t0.elapsed();
    assert!(warm.status.success());
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "warm cached lint took {elapsed:?} (budget 2 s)"
    );
}
