//! First-order thermal model of a package.
//!
//! The paper attributes the sustained-turbo difference between the two test
//! processors partly to thermal effects ("The first processor also appears
//! to use lower sustained turbo frequencies, possibly due to thermal
//! reasons"). This RC model provides the substrate: die temperature follows
//! `dT/dt = (P·R_th − (T − T_amb)) / τ`, and leakage grows with
//! temperature, closing the loop that separates otherwise identical parts
//! with different heat-sink seating.

use hsw_hwspec::clock::{ClockDomain, Ns};

/// Package thermal parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance in K/W.
    pub r_th_k_per_w: f64,
    /// Thermal time constant in seconds.
    pub tau_s: f64,
    /// Ambient (inlet) temperature in °C.
    pub t_ambient_c: f64,
    /// Throttle (PROCHOT) temperature in °C.
    pub t_prochot_c: f64,
}

impl ThermalParams {
    /// A 2U server package under strong airflow (the test node runs its
    /// fans at maximum — Table II).
    pub fn server_max_fans() -> Self {
        ThermalParams {
            r_th_k_per_w: 0.28,
            tau_s: 6.0,
            t_ambient_c: 26.0,
            t_prochot_c: 96.0,
        }
    }
}

/// Temperature state of one package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalState {
    pub t_die_c: f64,
    params: ThermalParams,
}

impl ThermalState {
    pub fn new(params: ThermalParams) -> Self {
        ThermalState {
            t_die_c: params.t_ambient_c,
            params,
        }
    }

    /// Advance the RC model by `dt_s` with package power `p_w`.
    pub fn advance(&mut self, dt_s: f64, p_w: f64) {
        let target = self.params.t_ambient_c + p_w * self.params.r_th_k_per_w;
        let alpha = 1.0 - (-dt_s / self.params.tau_s).exp();
        self.t_die_c += alpha * (target - self.t_die_c);
    }

    /// Steady-state temperature at constant power.
    pub fn steady_state_c(&self, p_w: f64) -> f64 {
        self.params.t_ambient_c + p_w * self.params.r_th_k_per_w
    }

    /// Leakage multiplier relative to the calibration temperature (55 °C):
    /// leakage roughly doubles per ~25 K.
    pub fn leakage_factor(&self) -> f64 {
        2f64.powf((self.t_die_c - 55.0) / 25.0)
    }

    /// Whether the package is at its PROCHOT throttle point.
    pub fn prochot(&self) -> bool {
        self.t_die_c >= self.params.t_prochot_c
    }
}

impl ClockDomain for ThermalState {
    fn name(&self) -> &'static str {
        "thermal"
    }

    /// Continuous RC integrator: exact exponential update over any step, but
    /// fp summation still requires engine modes to share one cadence.
    fn native_period_ns(&self) -> Ns {
        0
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn steady_state_is_below_prochot_at_tdp_with_max_fans() {
        // The test node never thermally throttles — TDP (RAPL) is the
        // binding limit, as the paper's Table IV analysis assumes.
        let t = ThermalState::new(ThermalParams::server_max_fans());
        let steady = t.steady_state_c(120.0);
        assert!(
            steady < ThermalParams::server_max_fans().t_prochot_c,
            "steady {steady:.1} °C"
        );
        assert!((55.0..75.0).contains(&steady), "steady {steady:.1} °C");
    }

    #[test]
    fn temperature_converges_exponentially() {
        let mut t = ThermalState::new(ThermalParams::server_max_fans());
        for _ in 0..100 {
            t.advance(0.5, 120.0);
        }
        assert!((t.t_die_c - t.steady_state_c(120.0)).abs() < 0.5);
        // And one time constant reaches ~63 %.
        let mut t2 = ThermalState::new(ThermalParams::server_max_fans());
        t2.advance(6.0, 120.0);
        let frac = (t2.t_die_c - 26.0) / (t2.steady_state_c(120.0) - 26.0);
        assert!((frac - 0.632).abs() < 0.02, "frac {frac:.3}");
    }

    #[test]
    fn hotter_die_leaks_more() {
        let mut cool = ThermalState::new(ThermalParams::server_max_fans());
        let mut hot = cool;
        cool.advance(100.0, 30.0);
        hot.advance(100.0, 120.0);
        assert!(hot.leakage_factor() > cool.leakage_factor() * 1.1);
    }

    #[test]
    fn worse_heatsink_seating_raises_steady_temperature() {
        // The socket-0-vs-socket-1 asymmetry mechanism.
        let good = ThermalState::new(ThermalParams::server_max_fans());
        let worse = ThermalState::new(ThermalParams {
            r_th_k_per_w: 0.34,
            ..ThermalParams::server_max_fans()
        });
        assert!(worse.steady_state_c(120.0) > good.steady_state_c(120.0) + 5.0);
    }

    proptest! {
        #[test]
        fn prop_temperature_bounded_by_ambient_and_steady(
            p in 0.0f64..200.0,
            steps in 1usize..200,
        ) {
            let params = ThermalParams::server_max_fans();
            let mut t = ThermalState::new(params);
            for _ in 0..steps {
                t.advance(0.3, p);
            }
            prop_assert!(t.t_die_c >= params.t_ambient_c - 1e-9);
            prop_assert!(t.t_die_c <= t.steady_state_c(p) + 1e-9);
        }

        #[test]
        fn prop_monotone_in_power(p in 10.0f64..150.0) {
            let params = ThermalParams::server_max_fans();
            let mut a = ThermalState::new(params);
            let mut b = ThermalState::new(params);
            for _ in 0..50 {
                a.advance(0.5, p);
                b.advance(0.5, p + 20.0);
            }
            prop_assert!(b.t_die_c > a.t_die_c);
        }
    }
}
