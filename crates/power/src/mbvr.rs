//! The mainboard voltage regulator and SVID interface (paper Section II-B).
//!
//! With FIVR on die, the mainboard VR supplies only three lanes: the
//! processor input `VCCin` and two DRAM lanes (`VCCD_01`, `VCCD_23`). The
//! processor commands the input voltage over SVID and "the MBVR supports
//! three different power states which are activated by the processor
//! according to the estimated power consumption" — light-load states trade
//! peak efficiency at high current for better efficiency at low current
//! (phase shedding).
//!
//! The phase-shedding thresholds, nominal rail voltage and legal SVID
//! command range come from the generation's [`hsw_hwspec::VrPolicy`]; the
//! per-state efficiency-curve shapes stay here (they are board, not
//! firmware, properties).

use hsw_hwspec::clock::{ClockDomain, Ns};
use hsw_hwspec::CpuGeneration;
use serde::{Deserialize, Serialize};

/// The three MBVR power states (full-phase, reduced-phase, light-load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MbvrPowerState {
    /// All phases active: best efficiency at high load.
    Ps0,
    /// Phases shed: better mid-load efficiency.
    Ps1,
    /// Diode/light-load mode: best at near-idle currents.
    Ps2,
}

/// The supply lanes reaching a Haswell-EP package (paper Section II-B:
/// "only three voltage lanes are attached to the processor", vs. five on
/// previous products).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupplyLane {
    VccIn,
    VccD01,
    VccD23,
}

impl SupplyLane {
    pub const ALL: [SupplyLane; 3] = [SupplyLane::VccIn, SupplyLane::VccD01, SupplyLane::VccD23];
}

/// The mainboard VR for the `VCCin` lane.
#[derive(Debug, Clone)]
pub struct Mbvr {
    state: MbvrPowerState,
    /// Nominal input voltage commanded over SVID (1.8 V for FIVR input).
    vccin: f64,
    /// Estimated-power threshold (W) below which PS1 engages, and …
    ps1_below_w: f64,
    /// … below which PS2 engages, with hysteresis to avoid chattering.
    ps2_below_w: f64,
    hysteresis_w: f64,
    /// Legal SVID command range (V).
    svid_lo_v: f64,
    svid_hi_v: f64,
}

impl Default for Mbvr {
    fn default() -> Self {
        Self::new()
    }
}

impl Mbvr {
    /// An MBVR with the paper system's (Haswell-EP) thresholds.
    pub fn new() -> Self {
        Self::for_generation(CpuGeneration::HaswellEp)
    }

    /// An MBVR with `generation`'s phase-shedding thresholds and SVID
    /// range.
    pub fn for_generation(generation: CpuGeneration) -> Self {
        let vr = generation.policy().vr();
        Mbvr {
            state: MbvrPowerState::Ps0,
            vccin: vr.vccin_v,
            ps1_below_w: vr.mbvr_ps1_below_w,
            ps2_below_w: vr.mbvr_ps2_below_w,
            hysteresis_w: vr.mbvr_hysteresis_w,
            svid_lo_v: vr.svid_lo_v,
            svid_hi_v: vr.svid_hi_v,
        }
    }

    pub fn state(&self) -> MbvrPowerState {
        self.state
    }

    pub fn vccin(&self) -> f64 {
        self.vccin
    }

    /// SVID set-voltage command from the processor.
    pub fn svid_set_voltage(&mut self, volts: f64) {
        assert!(
            (self.svid_lo_v..=self.svid_hi_v).contains(&volts),
            "VCCin range"
        );
        self.vccin = volts;
    }

    /// The processor updates the estimated power draw; the MBVR picks its
    /// state with hysteresis.
    pub fn update_estimated_power(&mut self, pkg_w: f64) {
        self.state = match self.state {
            MbvrPowerState::Ps0 => {
                if pkg_w < self.ps2_below_w {
                    MbvrPowerState::Ps2
                } else if pkg_w < self.ps1_below_w {
                    MbvrPowerState::Ps1
                } else {
                    MbvrPowerState::Ps0
                }
            }
            MbvrPowerState::Ps1 => {
                if pkg_w >= self.ps1_below_w + self.hysteresis_w {
                    MbvrPowerState::Ps0
                } else if pkg_w < self.ps2_below_w {
                    MbvrPowerState::Ps2
                } else {
                    MbvrPowerState::Ps1
                }
            }
            MbvrPowerState::Ps2 => {
                if pkg_w >= self.ps1_below_w + self.hysteresis_w {
                    MbvrPowerState::Ps0
                } else if pkg_w >= self.ps2_below_w + self.hysteresis_w {
                    MbvrPowerState::Ps1
                } else {
                    MbvrPowerState::Ps2
                }
            }
        };
    }

    /// Conversion efficiency at the given load in the current state.
    /// Shapes follow multiphase-buck practice: PS0 peaks near full load,
    /// the shed states near their own bands.
    pub fn efficiency(&self, pkg_w: f64) -> f64 {
        let x = pkg_w.max(0.5);
        match self.state {
            MbvrPowerState::Ps0 => 0.93 - 12.0 / x - 0.00008 * x,
            MbvrPowerState::Ps1 => 0.92 - 3.5 / x - 0.0006 * x,
            MbvrPowerState::Ps2 => 0.90 - 0.8 / x - 0.0025 * x,
        }
        .clamp(0.30, 0.95)
    }

    /// VR loss in W for a given package draw.
    pub fn loss_w(&self, pkg_w: f64) -> f64 {
        let eta = self.efficiency(pkg_w);
        pkg_w / eta - pkg_w
    }
}

impl ClockDomain for Mbvr {
    fn name(&self) -> &'static str {
        "mbvr"
    }

    /// Purely input-driven (no internal timers): continuous.
    fn native_period_ns(&self) -> Ns {
        0
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn in_state(state: MbvrPowerState) -> Mbvr {
        Mbvr {
            state,
            ..Mbvr::new()
        }
    }

    #[test]
    fn three_lanes_only() {
        // Paper Section II-B: three lanes vs. five on previous products.
        assert_eq!(SupplyLane::ALL.len(), 3);
    }

    #[test]
    fn haswell_policy_reproduces_the_calibration_thresholds() {
        // Satellite regression pins: the policy-driven constructor carries
        // the exact pre-refactor literals.
        let vr = Mbvr::new();
        assert_eq!(vr.vccin(), 1.80);
        assert_eq!(vr.ps1_below_w, 45.0);
        assert_eq!(vr.ps2_below_w, 15.0);
        assert_eq!(vr.hysteresis_w, 4.0);
        assert_eq!(vr.svid_lo_v, 1.6);
        assert_eq!(vr.svid_hi_v, 2.0);
    }

    #[test]
    fn state_follows_estimated_power() {
        let mut vr = Mbvr::new();
        assert_eq!(vr.state(), MbvrPowerState::Ps0);
        vr.update_estimated_power(10.0); // deep idle
        assert_eq!(vr.state(), MbvrPowerState::Ps2);
        vr.update_estimated_power(30.0); // light load
        assert_eq!(vr.state(), MbvrPowerState::Ps1);
        vr.update_estimated_power(120.0); // TDP
        assert_eq!(vr.state(), MbvrPowerState::Ps0);
    }

    #[test]
    fn hysteresis_prevents_chatter_at_the_threshold() {
        let mut vr = Mbvr::new();
        let (ps1, hyst) = (vr.ps1_below_w, vr.hysteresis_w);
        vr.update_estimated_power(30.0);
        assert_eq!(vr.state(), MbvrPowerState::Ps1);
        // Oscillating just around the PS1 threshold must not flip back.
        vr.update_estimated_power(ps1 + 1.0);
        assert_eq!(vr.state(), MbvrPowerState::Ps1);
        vr.update_estimated_power(ps1 - 1.0);
        assert_eq!(vr.state(), MbvrPowerState::Ps1);
        // Only a clear margin promotes.
        vr.update_estimated_power(ps1 + hyst + 1.0);
        assert_eq!(vr.state(), MbvrPowerState::Ps0);
    }

    #[test]
    fn each_state_wins_in_its_band() {
        let ps0 = in_state(MbvrPowerState::Ps0);
        let ps1 = in_state(MbvrPowerState::Ps1);
        let ps2 = in_state(MbvrPowerState::Ps2);
        // Near idle PS2 is most efficient; mid-load PS1; full-load PS0.
        assert!(ps2.efficiency(8.0) > ps1.efficiency(8.0));
        assert!(ps1.efficiency(8.0) > ps0.efficiency(8.0));
        assert!(ps1.efficiency(30.0) > ps0.efficiency(30.0));
        assert!(ps0.efficiency(120.0) > ps1.efficiency(120.0));
        assert!(ps0.efficiency(120.0) > ps2.efficiency(120.0));
    }

    #[test]
    fn svid_commands_are_range_checked() {
        let mut vr = Mbvr::new();
        vr.svid_set_voltage(1.75);
        assert!((vr.vccin() - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_range_svid_is_rejected() {
        Mbvr::new().svid_set_voltage(1.2);
    }

    proptest! {
        #[test]
        fn prop_efficiency_physical(p in 0.5f64..200.0, st in 0usize..3) {
            let vr = in_state(
                [MbvrPowerState::Ps0, MbvrPowerState::Ps1, MbvrPowerState::Ps2][st],
            );
            let eta = vr.efficiency(p);
            prop_assert!((0.30..=0.95).contains(&eta));
            prop_assert!(vr.loss_w(p) >= 0.0);
        }

        #[test]
        fn prop_state_machine_never_sticks(powers in proptest::collection::vec(0.0f64..200.0, 1..100)) {
            let mut vr = Mbvr::new();
            for p in powers {
                vr.update_estimated_power(p);
                // Clear full-load always recovers PS0.
            }
            vr.update_estimated_power(150.0);
            prop_assert_eq!(vr.state(), MbvrPowerState::Ps0);
        }
    }
}
