//! Node-level electrical model: constant DC loads and the nonlinear PSU.
//!
//! The survey's Figure 2 relies on the fact that the *reference* measurement
//! happens at a different domain (AC) than RAPL (DC package + DRAM): fans,
//! mainboard, VR losses, and the PSU's load-dependent conversion loss sit in
//! between (paper Section IV: "The power supply losses are likely to be
//! nonlinear").

use hsw_hwspec::NodeSpec;

/// Converts RAPL-domain power into the node's true AC power.
#[derive(Debug, Clone)]
pub struct NodePowerModel {
    spec: NodeSpec,
}

impl NodePowerModel {
    pub fn new(spec: NodeSpec) -> Self {
        NodePowerModel { spec }
    }

    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Total DC power drawn from the PSU for a given total RAPL power
    /// (all sockets, package + DRAM).
    pub fn dc_power_w(&self, p_rapl_w: f64) -> f64 {
        p_rapl_w + self.spec.rest_dc_w
    }

    /// PSU conversion loss at a given DC load.
    pub fn psu_loss_w(&self, p_dc_w: f64) -> f64 {
        let p = &self.spec.psu;
        p.a2 * p_dc_w * p_dc_w + p.a1 * p_dc_w + p.a0_w
    }

    /// True AC power of the node (before meter noise).
    pub fn ac_power_w(&self, p_rapl_w: f64) -> f64 {
        let dc = self.dc_power_w(p_rapl_w);
        dc + self.psu_loss_w(dc)
    }

    /// PSU efficiency at a given RAPL power.
    pub fn psu_efficiency(&self, p_rapl_w: f64) -> f64 {
        let dc = self.dc_power_w(p_rapl_w);
        dc / (dc + self.psu_loss_w(dc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;
    use proptest::prelude::*;

    fn model() -> NodePowerModel {
        NodePowerModel::new(NodeSpec::paper_test_node())
    }

    #[test]
    fn ac_power_matches_design_quadratic() {
        let m = model();
        for p in [0.0, 80.0, 160.0, 240.0, 287.0] {
            let expect = calib::AC_FIT_A2 * p * p + calib::AC_FIT_A1 * p + calib::AC_FIT_A0_W;
            assert!((m.ac_power_w(p) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn efficiency_is_physical() {
        let m = model();
        for p in [10.0, 100.0, 287.0] {
            let eta = m.psu_efficiency(p);
            assert!((0.5..1.0).contains(&eta), "eta = {eta} at {p} W");
        }
    }

    #[test]
    fn haswell_node_pins_the_calibration_psu_curve() {
        // Satellite regression pins: the paper node's electrical constants
        // survive the policy refactor bit-for-bit.
        let node = NodeSpec::paper_test_node();
        assert_eq!(node.rest_dc_w, 150.0);
        assert_eq!(node.psu.a2.to_bits(), calib::AC_FIT_A2.to_bits());
        assert_eq!(node.psu.a1, 0.007);
        assert_eq!(node.psu.a0_w, 67.9);
    }

    #[test]
    fn skylake_node_psu_is_physical_too() {
        // The SKX test node (1905.12468 Section III) runs the same PSU
        // model; its higher idle floor and 2-socket draw stay physical.
        let m = NodePowerModel::new(NodeSpec::skylake_sp_node());
        for p in [0.0, 100.0, 300.0, 500.0] {
            assert!(m.ac_power_w(p) > m.dc_power_w(p));
            assert!(m.ac_power_w(p + 1.0) > m.ac_power_w(p));
        }
        let eta = m.psu_efficiency(400.0);
        assert!((0.7..1.0).contains(&eta), "eta = {eta}");
    }

    #[test]
    fn loss_is_nonlinear() {
        // Marginal loss must grow with load (the "likely to be nonlinear"
        // premise that makes the Haswell fit quadratic rather than linear).
        let m = model();
        let d1 = m.psu_loss_w(200.0) - m.psu_loss_w(150.0);
        let d2 = m.psu_loss_w(450.0) - m.psu_loss_w(400.0);
        assert!(d2 > d1);
    }

    proptest! {
        #[test]
        fn prop_ac_monotone_in_rapl(p in 0.0f64..400.0) {
            let m = model();
            prop_assert!(m.ac_power_w(p + 1.0) > m.ac_power_w(p));
        }

        #[test]
        fn prop_ac_exceeds_dc(p in 0.0f64..400.0) {
            let m = model();
            prop_assert!(m.ac_power_w(p) > m.dc_power_w(p));
        }
    }
}
