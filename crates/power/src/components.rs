//! Package and DRAM power models.
//!
//! `P_pkg = base + Σ leakage(V) + Σ dyn(V, f, activity, avx) + uncore(Vu, fu)`
//!
//! Coefficients come from [`hsw_hwspec::sku::PowerCoeffs`]; they are
//! calibrated so the FIRESTARTER/TDP equilibria of paper Table IV emerge
//! from the PCU control loop (see `hsw-pcu` tests).

use hsw_hwspec::SkuSpec;

/// Electrical state of one core for a power evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreElecState {
    /// Current core frequency in MHz (ignored while power gated).
    pub mhz: u32,
    /// Switching activity factor in [0, 1]; 1.0 is the FIRESTARTER-level
    /// worst case, 0.0 a halted (C1) core.
    pub activity: f64,
    /// AVX license level in force (wider datapaths switching): 0 = none,
    /// 1 = 256-bit license, 2 = 512-bit license.
    pub license_level: u8,
    /// Whether the core is power gated (C6): no leakage, no dynamic power.
    pub power_gated: bool,
}

impl CoreElecState {
    /// A power-gated (C6) core.
    pub fn gated() -> Self {
        CoreElecState {
            mhz: 0,
            activity: 0.0,
            license_level: 0,
            power_gated: true,
        }
    }
}

/// Package power with its component breakdown (W).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PackagePower {
    pub base_w: f64,
    pub core_leakage_w: f64,
    pub core_dynamic_w: f64,
    pub uncore_w: f64,
}

impl PackagePower {
    pub fn total_w(&self) -> f64 {
        self.base_w + self.core_leakage_w + self.core_dynamic_w + self.uncore_w
    }
}

/// Evaluate the package power model for one socket.
///
/// `socket_mult` is the per-part efficiency variation (paper Section III:
/// socket 0 of the test system draws more power for the same operating
/// point than socket 1).
pub fn package_power_w(
    spec: &SkuSpec,
    socket_mult: f64,
    cores: &[CoreElecState],
    uncore_mhz: u32,
) -> PackagePower {
    let c = &spec.power;
    let mut leak = 0.0;
    let mut dyn_w = 0.0;
    for core in cores {
        if core.power_gated {
            continue;
        }
        let v = spec.core_vf.voltage_at(core.mhz.max(spec.freq.min_mhz));
        leak += c.core_leak_w_per_v2 * v * v;
        let avx = match core.license_level {
            0 => 1.0,
            1 => c.avx_power_mult,
            _ => c.avx512_power_mult,
        };
        dyn_w += c.core_dyn_w_per_v2ghz * v * v * (core.mhz as f64 / 1000.0) * core.activity * avx;
    }
    let vu = spec.uncore_vf.voltage_at(uncore_mhz);
    let uncore_w = c.uncore_dyn_w_per_v2ghz * vu * vu * (uncore_mhz as f64 / 1000.0);
    PackagePower {
        base_w: c.pkg_base_w,
        core_leakage_w: leak * socket_mult,
        core_dynamic_w: dyn_w * socket_mult,
        uncore_w: uncore_w * socket_mult,
    }
}

/// DRAM power for one socket as a function of its memory traffic.
pub fn dram_power_w(spec: &SkuSpec, bandwidth_gbs: f64) -> f64 {
    spec.power.dram_idle_w + spec.power.dram_w_per_gbs * bandwidth_gbs.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;
    use proptest::prelude::*;

    fn hsw() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    fn firestarter_cores(spec: &SkuSpec, mhz: u32) -> Vec<CoreElecState> {
        vec![
            CoreElecState {
                mhz,
                activity: 1.0,
                license_level: 0, // the AVX multiplier is calibrated out for
                // FIRESTARTER: its mix is the activity=1.0 reference
                power_gated: false,
            };
            spec.cores
        ]
    }

    #[test]
    fn firestarter_equilibrium_at_table4_operating_points() {
        // Paper Table IV: with the TDP limiter active, FIRESTARTER settles at
        // ~(2.31 GHz core, 2.34 GHz uncore) and ~(2.27, 2.46), ~(2.19, 2.80):
        // all must evaluate to ≈ 120 W package power.
        let spec = hsw();
        for (core_mhz, uncore_mhz) in [(2310, 2340), (2270, 2460), (2190, 2800)] {
            let p = package_power_w(&spec, 1.0, &firestarter_cores(&spec, core_mhz), uncore_mhz);
            assert!(
                (p.total_w() - spec.tdp_w).abs() < 4.0,
                "({core_mhz}, {uncore_mhz}): {:.1} W",
                p.total_w()
            );
        }
    }

    #[test]
    fn firestarter_at_2_1_ghz_is_below_tdp() {
        // Paper Section V-B: "For 2.1 GHz and slower, both processors use
        // less than 120 W ... the uncore frequency is at 3.0 GHz".
        let spec = hsw();
        let p = package_power_w(&spec, 1.0, &firestarter_cores(&spec, 2090), 3000);
        assert!(
            p.total_w() < calib::powercal::FS_NO_THROTTLE_BELOW_W,
            "{:.1} W",
            p.total_w()
        );
    }

    #[test]
    fn idle_package_power_matches_fig2_intercept() {
        // All cores gated, uncore at its floor: the package should draw
        // ~10–14 W so that two sockets + DRAM ≈ 32 W RAPL at 261.5 W AC.
        let spec = hsw();
        let cores = vec![CoreElecState::gated(); spec.cores];
        let p = package_power_w(&spec, 1.0, &cores, spec.freq.uncore_min_mhz);
        assert!(
            (8.0..16.0).contains(&p.total_w()),
            "idle pkg = {:.1} W",
            p.total_w()
        );
    }

    #[test]
    fn socket0_draws_more_than_socket1() {
        let spec = hsw();
        let cores = firestarter_cores(&spec, 2300);
        let p0 = package_power_w(&spec, calib::SOCKET_POWER_EFFICIENCY[0], &cores, 2400);
        let p1 = package_power_w(&spec, calib::SOCKET_POWER_EFFICIENCY[1], &cores, 2400);
        assert!(p0.total_w() > p1.total_w());
    }

    #[test]
    fn avx_license_increases_power() {
        let spec = hsw();
        let mut cores = firestarter_cores(&spec, 2100);
        let p_scalar = package_power_w(&spec, 1.0, &cores, 2000).total_w();
        for c in &mut cores {
            c.license_level = 1;
        }
        let p_avx = package_power_w(&spec, 1.0, &cores, 2000).total_w();
        assert!(p_avx > p_scalar * 1.1, "{p_avx} vs {p_scalar}");
    }

    #[test]
    fn gated_cores_draw_nothing() {
        let spec = hsw();
        let active = package_power_w(&spec, 1.0, &firestarter_cores(&spec, 2500), 2000);
        let gated = package_power_w(&spec, 1.0, &[CoreElecState::gated(); 12], 2000);
        assert_eq!(gated.core_leakage_w, 0.0);
        assert_eq!(gated.core_dynamic_w, 0.0);
        assert!(gated.total_w() < active.total_w());
    }

    #[test]
    fn dram_power_scales_with_bandwidth() {
        let spec = hsw();
        let idle = dram_power_w(&spec, 0.0);
        let loaded = dram_power_w(&spec, 40.0);
        assert!((idle - spec.power.dram_idle_w).abs() < 1e-12);
        assert!(loaded > idle + 15.0);
    }

    proptest! {
        #[test]
        fn prop_power_monotone_in_frequency(mhz in 1200u32..=3300) {
            let spec = hsw();
            let lo = package_power_w(&spec, 1.0, &firestarter_cores(&spec, mhz), 2000);
            let hi = package_power_w(&spec, 1.0, &firestarter_cores(&spec, mhz + 100), 2000);
            prop_assert!(hi.total_w() > lo.total_w());
        }

        #[test]
        fn prop_power_monotone_in_activity(act in 0.0f64..1.0) {
            let spec = hsw();
            let mk = |a: f64| {
                vec![CoreElecState { mhz: 2500, activity: a, license_level: 0,
                                     power_gated: false }; 12]
            };
            let lo = package_power_w(&spec, 1.0, &mk(act), 2000).total_w();
            let hi = package_power_w(&spec, 1.0, &mk((act + 0.1).min(1.0)), 2000).total_w();
            prop_assert!(hi >= lo);
        }

        #[test]
        fn prop_power_nonnegative(
            mhz in 1200u32..=3300,
            umhz in 1200u32..=3000,
            act in 0.0f64..=1.0,
        ) {
            let spec = hsw();
            let cores = vec![CoreElecState { mhz, activity: act, license_level: 0,
                                             power_gated: false }; 12];
            let p = package_power_w(&spec, 1.0, &cores, umhz);
            prop_assert!(p.total_w() > 0.0);
            prop_assert!(p.base_w >= 0.0 && p.core_leakage_w >= 0.0);
            prop_assert!(p.core_dynamic_w >= 0.0 && p.uncore_w >= 0.0);
        }
    }
}
