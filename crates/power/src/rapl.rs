//! RAPL engines: measured (Haswell-EP) vs. modeled (Sandy Bridge-EP) energy
//! accounting, and the DRAM mode 0 / mode 1 distinction (paper Section IV).

use hsw_hwspec::clock::{ClockDomain, Ns};
use hsw_hwspec::{calib, CpuGeneration, RaplMode};
use hsw_msr::EnergyCounter;

// `calib` stays imported for the limiter window, which is not
// generation-varying firmware policy.

/// DRAM RAPL operating mode. Haswell-EP only supports mode 1; selecting
/// mode 0 in the BIOS "will result in unspecified behavior" — modeled here
/// as energy scaled by the (wrong) package energy unit, producing the
/// "unreasonable high values for DRAM power consumption" the paper warns
/// about when using the SDM's unit instead of the datasheet's 15.3 µJ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramRaplMode {
    Mode0,
    Mode1,
}

/// Per-workload-class bias of the *modeled* RAPL implementation
/// (Sandy Bridge-EP, paper Fig. 2a): the event-counter model over- or
/// under-estimates depending on what the workload exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelBias {
    /// Multiplicative error of the package model.
    pub gain: f64,
    /// Additive error in W.
    pub offset_w: f64,
}

impl ModelBias {
    pub const NONE: ModelBias = ModelBias {
        gain: 1.0,
        offset_w: 0.0,
    };
}

/// The RAPL machinery of one socket.
#[derive(Debug, Clone)]
pub struct RaplEngine {
    mode: RaplMode,
    dram_mode: DramRaplMode,
    pkg: EnergyCounter,
    dram: EnergyCounter,
    /// Running average of package power over the limiter window, used by the
    /// PCU's TDP enforcement (exponentially weighted).
    avg_pkg_w: f64,
    /// Per-chip calibration gain of the fused energy metering relative to
    /// the nominal datasheet unit. Counts accumulate scaled by this factor
    /// while readers keep converting with the nominal unit, so both the
    /// reported power *and* the limiter's enforcement see the trimmed
    /// value — exactly how a miscalibrated unit behaves under a power cap.
    /// 1.0 (the reference chip) on every constructor path except
    /// [`RaplEngine::with_unit_trim`].
    trim_gain: f64,
    /// Relative noise amplitude of the measured (FIVR/IMON) readout,
    /// from the generation's [`hsw_hwspec::RaplPolicy`].
    measured_noise_frac: f64,
    /// Relative noise amplitude of the modeled readout.
    modeled_noise_frac: f64,
    /// Package-unit / DRAM-unit ratio, the mode-0 misreading factor.
    mode0_unit_ratio: f64,
}

impl RaplEngine {
    pub fn new(generation: CpuGeneration, dram_mode: DramRaplMode) -> Self {
        let policy = generation.policy().rapl();
        RaplEngine {
            mode: policy.mode,
            dram_mode,
            pkg: EnergyCounter::new(policy.pkg_energy_unit_uj * 1e-6),
            dram: EnergyCounter::new(policy.dram_energy_unit_uj * 1e-6),
            avg_pkg_w: 0.0,
            trim_gain: 1.0,
            measured_noise_frac: policy.measured_noise_frac,
            modeled_noise_frac: policy.modeled_noise_frac,
            mode0_unit_ratio: policy.pkg_energy_unit_uj / policy.dram_energy_unit_uj,
        }
    }

    /// Apply a per-chip metering trim (fleet variation). A gain of 1.0 is
    /// the reference chip and leaves behavior bit-identical to [`new`].
    ///
    /// [`new`]: RaplEngine::new
    pub fn with_unit_trim(mut self, gain: f64) -> Self {
        assert!(gain > 0.0, "RAPL trim gain must be positive");
        self.trim_gain = gain;
        self
    }

    /// The chip's metering trim gain (1.0 = reference calibration).
    pub fn unit_trim(&self) -> f64 {
        self.trim_gain
    }

    /// Reinstate dynamic state (counters and the limiter average) from a
    /// snapshot, keeping construction-derived configuration — mode and the
    /// per-chip trim — as built. This is what lets a warm-start fork
    /// restore a *golden* node's counters into a *varied* chip without
    /// inheriting the golden chip's calibration.
    pub fn restore_from(&mut self, snap: &RaplEngine) {
        self.pkg = snap.pkg.clone();
        self.dram = snap.dram.clone();
        self.avg_pkg_w = snap.avg_pkg_w;
    }

    pub fn mode(&self) -> RaplMode {
        self.mode
    }

    pub fn dram_mode(&self) -> DramRaplMode {
        self.dram_mode
    }

    /// Advance the engine by `dt_s` with the given true component powers.
    /// `bias` is the modeled-RAPL workload bias (ignored by measured RAPL).
    /// `noise` is a uniform draw in [-1, 1] — keyed by the caller to the
    /// simulation instant, not to how many times `advance` ran, so fixed-tick
    /// and event stepping accumulate identical error sequences. Measured RAPL
    /// scales it to its sub-percent quantization/measurement band.
    pub fn advance(
        &mut self,
        dt_s: f64,
        true_pkg_w: f64,
        true_dram_w: f64,
        bias: ModelBias,
        noise: f64,
    ) {
        let (pkg_w, dram_w) = match self.mode {
            RaplMode::Unavailable => (0.0, 0.0),
            RaplMode::Measured => {
                // FIVR/IMON-based measurement: sub-percent white error.
                let e = 1.0 + noise * self.measured_noise_frac;
                (true_pkg_w * e, true_dram_w * e)
            }
            RaplMode::Modeled => {
                // Event-driven model: systematic per-workload bias plus a
                // little model noise.
                let e = 1.0 + noise * self.modeled_noise_frac;
                (
                    (true_pkg_w * bias.gain + bias.offset_w) * e,
                    true_dram_w * bias.gain * e,
                )
            }
        };
        let dram_w = match self.dram_mode {
            DramRaplMode::Mode1 => dram_w,
            // Mode 0: counts are produced as if the energy unit were the
            // package ESU (61 µJ) while the register is read with the fixed
            // 15.3 µJ DRAM unit → readings ≈ 4× too high. Unity where the
            // generation uses a uniform unit (Skylake-SP).
            DramRaplMode::Mode0 => dram_w * self.mode0_unit_ratio,
        };
        self.pkg
            .add_joules((pkg_w * self.trim_gain * dt_s).max(0.0));
        self.dram
            .add_joules((dram_w * self.trim_gain * dt_s).max(0.0));
        // Power-limiter running average (~1 s time constant). PL1 compares
        // the *metered* energy against TDP, so the per-chip trim feeds the
        // enforcement too: a chip reading high throttles correspondingly
        // early.
        let window_s = calib::RAPL_LIMIT_WINDOW_US as f64 * 1e-6;
        let alpha = (dt_s / window_s).min(1.0);
        self.avg_pkg_w += alpha * (true_pkg_w * self.trim_gain - self.avg_pkg_w);
    }

    /// Raw 32-bit `MSR_PKG_ENERGY_STATUS` value.
    pub fn pkg_raw(&self) -> u32 {
        self.pkg.raw()
    }

    /// Raw 32-bit `MSR_DRAM_ENERGY_STATUS` value.
    pub fn dram_raw(&self) -> u32 {
        self.dram.raw()
    }

    /// Ground-truth accumulated package energy (simulation-internal).
    pub fn pkg_total_joules(&self) -> f64 {
        self.pkg.total_joules()
    }

    /// The limiter's running-average package power (what PL1 compares
    /// against TDP).
    pub fn running_avg_pkg_w(&self) -> f64 {
        self.avg_pkg_w
    }

    /// Interpret a pair of raw package readings as joules.
    pub fn pkg_delta_joules(&self, before: u32, after: u32) -> f64 {
        self.pkg.delta_joules(before, after)
    }

    /// Interpret a pair of raw DRAM readings as joules (mode-1 unit).
    pub fn dram_delta_joules(&self, before: u32, after: u32) -> f64 {
        self.dram.delta_joules(before, after)
    }
}

impl ClockDomain for RaplEngine {
    fn name(&self) -> &'static str {
        "rapl"
    }

    /// Continuous integrator: it accepts whatever step it is given (the
    /// limiter average is an Euler EMA, so callers must keep the cadence
    /// identical across engine modes).
    fn native_period_ns(&self) -> Ns {
        0
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::clock::{domain, DomainNoise};

    fn run_engine(
        generation: CpuGeneration,
        dram_mode: DramRaplMode,
        pkg_w: f64,
        dram_w: f64,
        bias: ModelBias,
        secs: f64,
    ) -> (f64, f64) {
        let noise = DomainNoise::new(42, domain::RAPL);
        let mut eng = RaplEngine::new(generation, dram_mode);
        let (p0, d0) = (eng.pkg_raw(), eng.dram_raw());
        let dt = 0.001;
        let steps = (secs / dt) as usize;
        for i in 0..steps {
            eng.advance(
                dt,
                pkg_w,
                dram_w,
                bias,
                noise.symmetric(i as Ns * 1_000_000, 0),
            );
        }
        (
            eng.pkg_delta_joules(p0, eng.pkg_raw()) / secs,
            eng.dram_delta_joules(d0, eng.dram_raw()) / secs,
        )
    }

    #[test]
    fn haswell_policy_reproduces_the_calibration_units() {
        // Satellite regression pins: the policy-driven constructor carries
        // the exact pre-refactor calibration values.
        let eng = RaplEngine::new(CpuGeneration::HaswellEp, DramRaplMode::Mode1);
        assert_eq!(eng.mode(), RaplMode::Measured);
        assert_eq!(eng.measured_noise_frac, 0.004);
        assert_eq!(eng.modeled_noise_frac, 0.01);
        assert_eq!(
            eng.mode0_unit_ratio.to_bits(),
            (calib::PKG_ENERGY_UNIT_UJ / calib::DRAM_ENERGY_UNIT_UJ).to_bits()
        );
    }

    #[test]
    fn skylake_uses_one_uniform_energy_unit() {
        // 1905.12468 Section II-E: Skylake-SP reads the DRAM domain with the
        // same ESU as the package, so "mode 0" no longer misreads.
        let policy = CpuGeneration::SkylakeSp.policy().rapl();
        assert_eq!(policy.pkg_energy_unit_uj, policy.dram_energy_unit_uj);
        let eng = RaplEngine::new(CpuGeneration::SkylakeSp, DramRaplMode::Mode0);
        assert_eq!(eng.mode0_unit_ratio, 1.0);
        assert_eq!(eng.mode(), RaplMode::Measured);
    }

    #[test]
    fn measured_rapl_tracks_true_power_closely() {
        let (pkg, dram) = run_engine(
            CpuGeneration::HaswellEp,
            DramRaplMode::Mode1,
            120.0,
            20.0,
            ModelBias::NONE,
            4.0,
        );
        assert!((pkg - 120.0).abs() < 0.5, "pkg = {pkg}");
        assert!((dram - 20.0).abs() < 0.2, "dram = {dram}");
    }

    #[test]
    fn modeled_rapl_carries_workload_bias() {
        let bias = ModelBias {
            gain: 0.85,
            offset_w: -5.0,
        };
        let (pkg, _) = run_engine(
            CpuGeneration::SandyBridgeEp,
            DramRaplMode::Mode1,
            120.0,
            20.0,
            bias,
            4.0,
        );
        assert!((pkg - (120.0 * 0.85 - 5.0)).abs() < 1.5, "pkg = {pkg}");
    }

    #[test]
    fn dram_mode0_reads_unreasonably_high() {
        // Paper Section IV: using the SDM's (package) energy unit for the
        // DRAM domain "would result in unreasonable high values".
        let (_, dram0) = run_engine(
            CpuGeneration::HaswellEp,
            DramRaplMode::Mode0,
            120.0,
            20.0,
            ModelBias::NONE,
            2.0,
        );
        let ratio = dram0 / 20.0;
        assert!((3.5..4.5).contains(&ratio), "mode0 ratio = {ratio}");
    }

    #[test]
    fn westmere_counters_never_move() {
        let (pkg, dram) = run_engine(
            CpuGeneration::WestmereEp,
            DramRaplMode::Mode1,
            100.0,
            20.0,
            ModelBias::NONE,
            1.0,
        );
        assert_eq!(pkg, 0.0);
        assert_eq!(dram, 0.0);
    }

    #[test]
    fn running_average_settles_to_true_power() {
        let noise = DomainNoise::new(1, domain::RAPL);
        let mut eng = RaplEngine::new(CpuGeneration::HaswellEp, DramRaplMode::Mode1);
        for i in 0..5000 {
            eng.advance(0.001, 130.0, 10.0, ModelBias::NONE, noise.symmetric(i, 0));
        }
        assert!((eng.running_avg_pkg_w() - 130.0).abs() < 2.0);
    }

    #[test]
    fn restored_fork_crosses_the_pkg_wrap_identically() {
        // Warm-start fork path: `restore_from` must carry the package
        // counter's raw value *and* its sub-unit residue across, so a fork
        // taken just below the 2^32 boundary wraps at exactly the same
        // instant as the uninterrupted engine.
        let period_j = 4_294_967_296.0 * calib::PKG_ENERGY_UNIT_UJ * 1e-6;
        let mut unforked = RaplEngine::new(CpuGeneration::HaswellEp, DramRaplMode::Mode1);
        // Park ~50 J below the wrap. Zero noise makes the placement exact.
        unforked.advance(1.0, period_j - 50.0, 0.0, ModelBias::NONE, 0.0);
        let before = unforked.pkg_raw();
        assert!(before > u32::MAX - 1_000_000, "parked below the boundary");

        let mut fork = RaplEngine::new(CpuGeneration::HaswellEp, DramRaplMode::Mode1);
        fork.restore_from(&unforked);

        // 7 kJ over one simulated second crosses the boundary in both.
        let noise = DomainNoise::new(3, domain::RAPL);
        for i in 0..100 {
            let n = noise.symmetric(i as Ns * 10_000_000, 0);
            unforked.advance(0.01, 7000.0, 0.0, ModelBias::NONE, n);
            fork.advance(0.01, 7000.0, 0.0, ModelBias::NONE, n);
        }
        assert!(unforked.pkg_raw() < before, "must wrap");
        assert_eq!(unforked.pkg_raw(), fork.pkg_raw());
        assert_eq!(
            unforked.pkg_total_joules().to_bits(),
            fork.pkg_total_joules().to_bits()
        );
        let d = unforked.pkg_delta_joules(before, unforked.pkg_raw());
        assert_eq!(d, fork.pkg_delta_joules(before, fork.pkg_raw()));
        // Wrap-aware delta still reads the consumed energy (±0.4% meter).
        assert!((d - 7000.0).abs() < 100.0, "d = {d}");
    }

    #[test]
    fn counters_survive_wraparound_measurement() {
        // 32-bit DRAM counter at 15.3 µJ wraps every ~65 kJ; a long window
        // at high power must still difference correctly.
        let noise = DomainNoise::new(9, domain::RAPL);
        let mut eng = RaplEngine::new(CpuGeneration::HaswellEp, DramRaplMode::Mode1);
        let before = eng.dram_raw();
        // 70 kJ in one step chain (7 kW·10 s equivalent).
        for i in 0..100 {
            eng.advance(0.1, 0.0, 7000.0, ModelBias::NONE, noise.symmetric(i, 0));
        }
        let d = eng.dram_delta_joules(before, eng.dram_raw());
        // The wrap loses exactly one full counter period of 65.536 kJ.
        assert!((d - (70_000.0 - 65_536.0)).abs() < 400.0, "d = {d}");
    }
}
