//! ZES ZIMMER LMG450 power meter model (paper Section III, \[19\]).
//!
//! The real instrument samples voltage and current at a high internal rate
//! and emits calibrated AC power readings at 20 Sa/s with an accuracy of
//! 0.07 % + 0.23 W. We model the reading as the true power plus a slowly
//! varying gain error (within the relative accuracy) plus white noise
//! (within the absolute accuracy).

use rand::Rng;

use hsw_hwspec::calib;

/// A calibrated 4-channel AC power meter.
#[derive(Debug, Clone)]
pub struct Lmg450 {
    /// Per-instrument gain error, fixed at "calibration" time, within the
    /// relative accuracy band.
    gain: f64,
    sample_period_s: f64,
}

impl Lmg450 {
    /// Create a meter with a deterministic per-instrument gain drawn from
    /// the calibration band.
    pub fn new<R: Rng>(rng: &mut R) -> Self {
        let rel = calib::LMG450_REL_ACCURACY;
        Lmg450 {
            gain: 1.0 + rng.gen_range(-rel..=rel),
            sample_period_s: 1.0 / calib::LMG450_SAMPLE_RATE_HZ,
        }
    }

    /// An ideal meter (zero gain error) for deterministic tests.
    pub fn ideal() -> Self {
        Lmg450 {
            gain: 1.0,
            sample_period_s: 1.0 / calib::LMG450_SAMPLE_RATE_HZ,
        }
    }

    /// Time between output samples (50 ms at 20 Sa/s).
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }

    /// One reading of a true AC power value.
    pub fn sample<R: Rng>(&self, true_w: f64, rng: &mut R) -> f64 {
        let abs = calib::LMG450_ABS_ACCURACY_W;
        // White noise well inside the guaranteed absolute band (the spec is
        // a bound, not a standard deviation).
        let noise = rng.gen_range(-abs..=abs) * 0.5;
        true_w * self.gain + noise
    }

    /// Average of consecutive readings over `duration_s` of constant load —
    /// the paper's measurement primitive ("average power consumption of a
    /// constant load during four seconds", Section IV).
    pub fn average<R: Rng>(&self, true_w: f64, duration_s: f64, rng: &mut R) -> f64 {
        let n = (duration_s / self.sample_period_s).round().max(1.0) as usize;
        let sum: f64 = (0..n).map(|_| self.sample(true_w, rng)).sum();
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn readings_stay_within_accuracy_spec() {
        let mut rng = SmallRng::seed_from_u64(7);
        let meter = Lmg450::new(&mut rng);
        for &p in &[50.0_f64, 261.5, 560.0] {
            for _ in 0..200 {
                let r = meter.sample(p, &mut rng);
                let bound = p * calib::LMG450_REL_ACCURACY + calib::LMG450_ABS_ACCURACY_W;
                assert!((r - p).abs() <= bound, "reading {r} outside {p} ± {bound}");
            }
        }
    }

    #[test]
    fn four_second_average_is_tighter_than_single_sample() {
        let mut rng = SmallRng::seed_from_u64(11);
        let meter = Lmg450::ideal();
        let avg = meter.average(300.0, 4.0, &mut rng);
        assert!((avg - 300.0).abs() < 0.05, "avg = {avg}");
    }

    #[test]
    fn sample_rate_is_20_per_second() {
        assert!((Lmg450::ideal().sample_period_s() - 0.05).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(1);
        // A 4 s window must be built from 80 samples.
        let n = (4.0 / Lmg450::ideal().sample_period_s()).round() as usize;
        assert_eq!(n, 80);
        let _ = Lmg450::ideal().average(100.0, 4.0, &mut rng);
    }

    #[test]
    fn instrument_gain_is_stable_per_instrument() {
        let mut rng = SmallRng::seed_from_u64(3);
        let meter = Lmg450::new(&mut rng);
        // With noise averaged out, repeated long averages agree closely.
        let a = meter.average(500.0, 10.0, &mut rng);
        let b = meter.average(500.0, 10.0, &mut rng);
        assert!((a - b).abs() < 0.1);
    }
}
