//! ZES ZIMMER LMG450 power meter model (paper Section III, \[19\]).
//!
//! The real instrument samples voltage and current at a high internal rate
//! and emits calibrated AC power readings at 20 Sa/s with an accuracy of
//! 0.07 % + 0.23 W. We model the reading as the true power plus a slowly
//! varying gain error (within the relative accuracy) plus white noise
//! (within the absolute accuracy). Both error terms are keyed to the
//! simulation instant, so a seeded run reads the same wattage no matter how
//! the engine subdivided the time in between samples.

use hsw_hwspec::calib;
use hsw_hwspec::clock::{ClockDomain, DomainNoise, Ns};

/// Salt distinguishing the per-instrument gain draw from sample noise.
const GAIN_SALT: u64 = 0xCAFE;

/// A calibrated 4-channel AC power meter.
#[derive(Debug, Clone)]
pub struct Lmg450 {
    /// Per-instrument gain error, fixed at "calibration" time, within the
    /// relative accuracy band.
    gain: f64,
    /// Keyed white-noise stream for individual readings.
    noise: DomainNoise,
    sample_period_s: f64,
}

impl Lmg450 {
    /// Create a meter whose per-instrument gain and per-sample noise come
    /// from the given keyed stream (one instrument per node).
    pub fn calibrated(noise: DomainNoise) -> Self {
        let rel = calib::LMG450_REL_ACCURACY;
        Lmg450 {
            gain: 1.0 + noise.symmetric(0, GAIN_SALT) * rel,
            noise,
            sample_period_s: 1.0 / calib::LMG450_SAMPLE_RATE_HZ,
        }
    }

    /// An ideal meter (zero gain error, zero noise amplitude would defeat
    /// the accuracy tests, so only the gain is idealized) for deterministic
    /// tests.
    pub fn ideal() -> Self {
        Lmg450 {
            gain: 1.0,
            noise: DomainNoise::new(0, hsw_hwspec::clock::domain::METER),
            sample_period_s: 1.0 / calib::LMG450_SAMPLE_RATE_HZ,
        }
    }

    /// Time between output samples (50 ms at 20 Sa/s).
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }

    /// One reading of a true AC power value at simulation instant `t_ns`.
    pub fn sample(&self, true_w: f64, t_ns: Ns) -> f64 {
        let abs = calib::LMG450_ABS_ACCURACY_W;
        // White noise well inside the guaranteed absolute band (the spec is
        // a bound, not a standard deviation).
        let noise = self.noise.symmetric(t_ns, 0) * abs * 0.5;
        true_w * self.gain + noise
    }

    /// Average of consecutive readings over `duration_s` of constant load
    /// starting at `t0_ns` — the paper's measurement primitive ("average
    /// power consumption of a constant load during four seconds", Section IV).
    pub fn average(&self, true_w: f64, duration_s: f64, t0_ns: Ns) -> f64 {
        let n = (duration_s / self.sample_period_s).round().max(1.0) as usize;
        let period_ns = (self.sample_period_s * 1e9) as Ns;
        let sum: f64 = (0..n)
            .map(|k| self.sample(true_w, t0_ns + k as Ns * period_ns))
            .sum();
        sum / n as f64
    }
}

impl ClockDomain for Lmg450 {
    fn name(&self) -> &'static str {
        "meter"
    }

    fn native_period_ns(&self) -> Ns {
        (self.sample_period_s * 1e9) as Ns
    }

    /// The meter is passive: it reads on demand, it never schedules work.
    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::clock::domain;

    fn meter(seed: u64) -> Lmg450 {
        Lmg450::calibrated(DomainNoise::new(seed, domain::METER))
    }

    #[test]
    fn readings_stay_within_accuracy_spec() {
        let meter = meter(7);
        for &p in &[50.0_f64, 261.5, 560.0] {
            for t in 0..200u64 {
                let r = meter.sample(p, t * 50_000_000);
                let bound = p * calib::LMG450_REL_ACCURACY + calib::LMG450_ABS_ACCURACY_W;
                assert!((r - p).abs() <= bound, "reading {r} outside {p} ± {bound}");
            }
        }
    }

    #[test]
    fn four_second_average_is_tighter_than_single_sample() {
        let meter = Lmg450::ideal();
        let avg = meter.average(300.0, 4.0, 0);
        assert!((avg - 300.0).abs() < 0.05, "avg = {avg}");
    }

    #[test]
    fn sample_rate_is_20_per_second() {
        assert!((Lmg450::ideal().sample_period_s() - 0.05).abs() < 1e-12);
        // A 4 s window must be built from 80 samples.
        let n = (4.0 / Lmg450::ideal().sample_period_s()).round() as usize;
        assert_eq!(n, 80);
        let _ = Lmg450::ideal().average(100.0, 4.0, 0);
    }

    #[test]
    fn instrument_gain_is_stable_per_instrument() {
        let meter = meter(3);
        // With noise averaged out, long averages over disjoint windows agree.
        let a = meter.average(500.0, 10.0, 0);
        let b = meter.average(500.0, 10.0, 10_000_000_000);
        assert!((a - b).abs() < 0.1);
    }

    #[test]
    fn readings_are_a_pure_function_of_time() {
        // Two meters built from the same stream agree sample-for-sample —
        // the property that keeps fixed and event stepping byte-identical.
        let a = meter(11);
        let b = meter(11);
        for t in [0u64, 50_000_000, 123_456_789] {
            assert_eq!(a.sample(261.5, t).to_bits(), b.sample(261.5, t).to_bits());
        }
    }
}
