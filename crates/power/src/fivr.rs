//! The fully integrated voltage regulators (FIVR; paper Section II-B, \[1\]).
//!
//! Haswell moves voltage regulation onto the die: the mainboard supplies a
//! single ~1.8 V `VCCin` rail ([`crate::mbvr`]) and per-domain on-die
//! regulators derive the core/uncore voltages — which is what enables
//! per-core p-states in the first place. This module models one regulator:
//! conversion efficiency, input-current draw, and the load-step transient
//! (voltage droop and recovery) whose settling time is the ~21 µs
//! switching component of the paper's p-state transition measurements.
//!
//! All electrical parameters come from the generation's
//! [`hsw_hwspec::VrPolicy`]; Skylake-SP drops FIVR entirely
//! (`has_fivr = false`), which [`Fivr::for_generation`] reports via `None`.

use hsw_hwspec::CpuGeneration;

/// One on-die regulator domain (a core, or the uncore).
#[derive(Debug, Clone)]
pub struct Fivr {
    /// Input rail voltage (V), commanded to the MBVR over SVID.
    vccin: f64,
    /// Current output setpoint (V).
    setpoint: f64,
    /// Actual output voltage (V) — lags the setpoint during transients.
    vout: f64,
    /// Legal output-voltage command range (V).
    v_lo: f64,
    v_hi: f64,
    /// Slew time constant (µs), sized so a step settles to within the
    /// policy's tolerance in about the p-state switching time.
    tau_us: f64,
    /// Settled-band half-width (V).
    settle_tol_v: f64,
    /// Efficiency curve η(P) = peak − light/P − slope·P, clamped.
    eff_peak: f64,
    eff_light_w: f64,
    eff_slope_per_w: f64,
    eff_lo: f64,
    eff_hi: f64,
}

/// FIVR conversion efficiency at a given output power share, with the
/// paper system's (Haswell-EP) curve. High-frequency integrated
/// regulators peak around 90 % and fall off at light load.
pub fn efficiency(out_w: f64) -> f64 {
    let p = CpuGeneration::HaswellEp.policy().vr();
    let x = out_w.max(0.05);
    (p.fivr_eff_peak - p.fivr_eff_light_w / x - p.fivr_eff_slope_per_w * x)
        .clamp(p.fivr_eff_lo, p.fivr_eff_hi)
}

impl Fivr {
    /// A regulator with the paper system's (Haswell-EP) electricals.
    pub fn new(initial_v: f64) -> Self {
        // lint:allow(P1): HaswellEp is in the FIVR generation table by construction
        Self::for_generation(CpuGeneration::HaswellEp, initial_v).expect("Haswell implements FIVR")
    }

    /// A regulator with `generation`'s electricals, or `None` for parts
    /// that regulate on the mainboard instead (Skylake-SP).
    pub fn for_generation(generation: CpuGeneration, initial_v: f64) -> Option<Self> {
        let policy = generation.policy();
        let vr = policy.vr();
        if !vr.has_fivr {
            return None;
        }
        Some(Fivr {
            vccin: vr.vccin_v,
            setpoint: initial_v,
            vout: initial_v,
            v_lo: vr.core_v_lo,
            v_hi: vr.core_v_hi,
            // settle(switching time) for a 100 mV step to within tol
            // → τ = t_switch / ln(ratio); 21/ln(50) ≈ 5.4 µs on Haswell.
            tau_us: policy.pstate().switching_time_us as f64 / vr.fivr_settle_ratio.ln(),
            settle_tol_v: vr.fivr_settle_tol_v,
            eff_peak: vr.fivr_eff_peak,
            eff_light_w: vr.fivr_eff_light_w,
            eff_slope_per_w: vr.fivr_eff_slope_per_w,
            eff_lo: vr.fivr_eff_lo,
            eff_hi: vr.fivr_eff_hi,
        })
    }

    pub fn vccin(&self) -> f64 {
        self.vccin
    }

    pub fn vout(&self) -> f64 {
        self.vout
    }

    pub fn setpoint(&self) -> f64 {
        self.setpoint
    }

    /// Command a new output voltage (the PCU does this at a p-state
    /// change).
    pub fn set_voltage(&mut self, volts: f64) {
        assert!(
            (self.v_lo..=self.v_hi).contains(&volts),
            "core voltage range"
        );
        self.setpoint = volts;
    }

    /// Advance the regulator by `dt_us`: the output slews toward the
    /// setpoint with a time constant sized so a 100 mV step settles (to
    /// within the policy tolerance) in about the FIVR switching time the
    /// paper measured.
    pub fn advance(&mut self, dt_us: f64) {
        let alpha = 1.0 - (-dt_us / self.tau_us).exp();
        self.vout += alpha * (self.setpoint - self.vout);
    }

    /// Whether the output has settled at the setpoint — the condition for
    /// the PCU to "signal that the voltage has been adjusted" (paper
    /// Section II-F's AVX workflow).
    pub fn settled(&self) -> bool {
        (self.vout - self.setpoint).abs() < self.settle_tol_v
    }

    /// Conversion efficiency at a given output power share.
    pub fn efficiency(&self, out_w: f64) -> f64 {
        let x = out_w.max(0.05);
        (self.eff_peak - self.eff_light_w / x - self.eff_slope_per_w * x)
            .clamp(self.eff_lo, self.eff_hi)
    }

    /// Input power drawn from `VCCin` to deliver `out_w` at the output.
    pub fn input_power_w(&self, out_w: f64) -> f64 {
        out_w / self.efficiency(out_w)
    }

    /// Input current on the VCCin rail (A).
    pub fn input_current_a(&self, out_w: f64) -> f64 {
        self.input_power_w(out_w) / self.vccin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn voltage_step_settles_in_about_the_switching_time() {
        // A 0.89 → 0.99 V step (one ~large p-state hop) must settle within
        // the paper's 21 µs switching time, but not much faster.
        let mut f = Fivr::new(0.89);
        f.set_voltage(0.99);
        let mut t = 0.0;
        while !f.settled() {
            f.advance(0.5);
            t += 0.5;
            assert!(t < 30.0, "did not settle");
        }
        assert!(
            (15.0..=25.0).contains(&t),
            "settled in {t} µs (expected ≈21 µs)"
        );
    }

    #[test]
    fn haswell_policy_reproduces_the_calibration_electricals() {
        // Satellite regression pins: the policy-driven constructor carries
        // the exact pre-refactor literals.
        let f = Fivr::new(0.9);
        assert_eq!(f.vccin(), 1.80);
        assert_eq!(f.settle_tol_v, 0.002);
        assert_eq!(f.v_lo, 0.4);
        assert_eq!(f.v_hi, 1.4);
        let expect_tau = hsw_hwspec::calib::PSTATE_SWITCHING_TIME_US as f64 / (50.0f64).ln();
        assert_eq!(f.tau_us, expect_tau);
        assert_eq!(f.efficiency(8.0), efficiency(8.0));
    }

    #[test]
    fn skylake_has_no_fivr() {
        // 1905.12468 Section II: Skylake-SP returns voltage regulation to
        // the mainboard.
        assert!(Fivr::for_generation(CpuGeneration::SkylakeSp, 0.9).is_none());
        assert!(Fivr::for_generation(CpuGeneration::HaswellEp, 0.9).is_some());
    }

    #[test]
    fn efficiency_peaks_at_moderate_load() {
        assert!(efficiency(8.0) > 0.85);
        assert!(efficiency(0.2) < efficiency(8.0)); // light-load penalty
        assert!(efficiency(8.0) <= 0.92);
    }

    #[test]
    fn input_power_exceeds_output_power() {
        let f = Fivr::new(0.9);
        for out in [0.5, 2.0, 8.0, 15.0] {
            assert!(f.input_power_w(out) > out);
        }
        // A ~7 W core at 90 % efficiency pulls ~4.3 A from the 1.8 V rail.
        let amps = f.input_current_a(7.0);
        assert!((3.5..5.5).contains(&amps), "{amps:.1} A");
    }

    #[test]
    fn per_core_regulators_are_independent() {
        // The PCPS enabler: one core's regulator moves without the other.
        let mut a = Fivr::new(0.85);
        let mut b = Fivr::new(0.85);
        a.set_voltage(1.05);
        for _ in 0..100 {
            a.advance(1.0);
            b.advance(1.0);
        }
        assert!((a.vout() - 1.05).abs() < 0.003);
        assert!((b.vout() - 0.85).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_output_always_between_start_and_setpoint(
            start in 0.6f64..1.2,
            target in 0.6f64..1.2,
            steps in 1usize..100,
        ) {
            let mut f = Fivr::new(start);
            f.set_voltage(target);
            let (lo, hi) = if start < target { (start, target) } else { (target, start) };
            for _ in 0..steps {
                f.advance(1.0);
                prop_assert!(f.vout() >= lo - 1e-9 && f.vout() <= hi + 1e-9);
            }
        }

        #[test]
        fn prop_efficiency_physical(out in 0.05f64..50.0) {
            let eta = efficiency(out);
            prop_assert!((0.5..=0.92).contains(&eta));
        }
    }
}
