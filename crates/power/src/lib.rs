//! # hsw-power — electrical models of the simulated node
//!
//! Implements the power side of the survey:
//!
//! * [`components`]: the package power model (per-core dynamic + leakage,
//!   uncore, AVX multiplier, per-socket efficiency variation) and the DRAM
//!   power model, using the calibration coefficients from `hsw-hwspec`.
//! * [`psu`]: the nonlinear power-supply loss curve and constant node loads
//!   (fans at maximum, mainboard), designed so the true AC power of the test
//!   node follows the paper's published quadratic AC-vs-RAPL relation.
//! * [`meter`]: the ZES ZIMMER LMG450 reference meter model — 20 Sa/s with
//!   0.07 % + 0.23 W accuracy (paper Section III / Table II).
//! * [`temperature`]: a first-order thermal RC model (die temperature,
//!   temperature-dependent leakage, PROCHOT) — the mechanism behind the
//!   paper's "lower sustained turbo frequencies, possibly due to thermal
//!   reasons" remark about socket 0.
//! * [`rapl`]: RAPL engines. Haswell-EP integrates *measured* energy
//!   (paper Fig. 2b); Sandy Bridge-EP applies a per-workload-class model
//!   bias (paper Fig. 2a). Includes the DRAM mode 0 / mode 1 distinction of
//!   paper Section IV.
//!
//! ## Snapshot coverage
//!
//! Every stateful type here ([`RaplEngine`], [`ThermalState`], [`Mbvr`],
//! the FIVR state) is plain data and `Clone`, so `hsw-node`'s warm-start
//! snapshots capture them wholesale — no per-field snapshot companion is
//! needed. The [`Lmg450`] meter is the exception by design: it holds no
//! mutable state (samples are keyed by seed and instant), so forks rebuild
//! it from the fork seed instead of restoring it.

pub mod components;
pub mod fivr;
pub mod mbvr;
pub mod meter;
pub mod psu;
pub mod rapl;
pub mod temperature;

pub use components::{dram_power_w, package_power_w, CoreElecState, PackagePower};
pub use fivr::Fivr;
pub use mbvr::{Mbvr, MbvrPowerState, SupplyLane};
pub use meter::Lmg450;
pub use psu::NodePowerModel;
pub use rapl::{DramRaplMode, ModelBias, RaplEngine};
pub use temperature::{ThermalParams, ThermalState};
