//! The closed-form steady-state model: a scalar, bit-exact replica of the
//! PCU equilibrium solve fed with the RAPL limiter's analytic fixed point.
//!
//! See the crate docs for the model equations and the error model. The
//! mirroring contract with [`hsw_pcu::controller`] is load-bearing: every
//! arithmetic expression in [`SteadySolve`] evaluates the same floating
//! point operations in the same order as `PcuController::solve`, with the
//! per-core electrical array collapsed to scalar accumulation (active cores
//! are electrically identical, so the running sums visit the same values in
//! the same order). Tests assert bit-equality against the real solver
//! across both platforms' operating envelopes.

use hsw_exec::workloads::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::{calib, EpbClass, NodeSpec, PState, SkuSpec};
use hsw_pcu::ufs::{self, UfsInputs};
use hsw_pcu::{EetController, PcuController, PcuInputs};

use hsw_fleet::ChipVariation;

/// One point of the operating envelope: which workload runs how wide, under
/// which OS frequency/EPB policy. Power caps are expressed the way the
/// simulator expresses them — as the spec's TDP (see
/// [`AnalyticModel::with_cap_w`]).
#[derive(Debug, Clone)]
pub struct OperatingPoint<'a> {
    pub profile: &'a WorkloadProfile,
    pub setting: FreqSetting,
    pub epb: EpbClass,
    /// `IA32_MISC_ENABLE[38]` turbo disengage (inverted).
    pub turbo_enabled: bool,
    /// Cores running the workload per socket (the remainder idles in C6).
    pub active_cores: usize,
    /// Both hardware threads of each active core loaded.
    pub smt: bool,
}

impl<'a> OperatingPoint<'a> {
    /// The common case: `cores` cores active under turbo with balanced EPB.
    pub fn new(profile: &'a WorkloadProfile, setting: FreqSetting, active_cores: usize) -> Self {
        OperatingPoint {
            profile,
            setting,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores,
            smt: false,
        }
    }
}

/// Steady-state prediction for one socket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketPrediction {
    /// Granted core frequency in GHz (time-averaged, like the PCU grant).
    pub core_ghz: f64,
    /// Granted uncore frequency in GHz.
    pub uncore_ghz: f64,
    /// Retired instruction rate of one loaded hardware thread in GIPS —
    /// the quantity the survey's `PerfCtr` windows report per thread.
    pub gips: f64,
    /// Package power as the node's RAPL meter would report it (model power
    /// plus idle housekeeping, scaled by the chip's metering trim).
    pub pkg_w: f64,
    /// Whether the TDP limiter constrains this operating point.
    pub power_limited: bool,
}

/// Steady-state prediction for a whole node (one entry per socket).
#[derive(Debug, Clone, PartialEq)]
pub struct NodePrediction {
    pub sockets: Vec<SocketPrediction>,
}

impl NodePrediction {
    /// Total reported package power across sockets (W).
    pub fn node_pkg_w(&self) -> f64 {
        self.sockets.iter().map(|s| s.pkg_w).sum()
    }
}

/// EPB budget bias, mirroring `PcuController::solve` (Table V's sub-1 %
/// frequency differences across EPB settings).
fn epb_budget_factor(epb: EpbClass) -> f64 {
    match epb {
        EpbClass::Performance => 1.005,
        EpbClass::Balanced => 1.0,
        EpbClass::EnergySaving => 0.995,
    }
}

/// The RAPL limiter's steady running average for a socket granting `P*`:
/// the closed-form fixed point of
/// `P* = e · clamp(2·TDP − g·(P* + H), 0.9·TDP, PL2·TDP)`,
/// returned as the average `g · (P* + H)` the PCU solve reads.
///
/// `housekeeping_w` is the OS idle-housekeeping power the meter sees on top
/// of the modeled package power (`IDLE_PKG_HOUSEKEEPING_W` × idle fraction).
pub fn steady_avg_pkg_w(spec: &SkuSpec, epb: EpbClass, housekeeping_w: f64) -> f64 {
    let t = spec.tdp_w;
    let g = spec.power.rapl_trim_gain;
    let h = housekeeping_w;
    let e = epb_budget_factor(epb);
    let (lo, hi) = (t * 0.9, t * calib::PL2_TDP_MULT);
    // Unclamped fixed point, then a consistency check against the clamp
    // window (the clamp map is monotone decreasing in P*, so exactly one
    // branch is self-consistent).
    let p_unclamped = e * (2.0 * t - g * h) / (1.0 + e * g);
    let x = 2.0 * t - g * (p_unclamped + h);
    let p_star = if x < lo {
        e * lo
    } else if x > hi {
        e * hi
    } else {
        p_unclamped
    };
    g * (p_star + h)
}

/// The grant of one steady-state solve (field-for-field the PCU's grant).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SteadyGrant {
    core_mhz: f64,
    uncore_mhz: f64,
    power_w: f64,
    power_limited: bool,
}

/// All inputs of one socket solve, in the PCU controller's own terms.
struct SteadySolve<'a> {
    spec: &'a SkuSpec,
    socket_power_mult: f64,
    setting: FreqSetting,
    epb: EpbClass,
    turbo_enabled: bool,
    active_cores: usize,
    gated_idle_cores: usize,
    activity: f64,
    avx_level: u8,
    stall_fraction: f64,
    eet_limit_mhz: u32,
    avg_pkg_w: f64,
}

impl<'a> SteadySolve<'a> {
    /// The same inputs as a [`PcuInputs`] — used for the ceiling (shared
    /// with the real controller) and by the bit-equality tests.
    fn to_pcu_inputs(&self) -> PcuInputs<'a> {
        PcuInputs {
            spec: self.spec,
            socket_power_mult: self.socket_power_mult,
            setting: self.setting,
            epb: self.epb,
            turbo_enabled: self.turbo_enabled,
            active_cores: self.active_cores,
            gated_idle_cores: self.gated_idle_cores,
            activity: self.activity,
            avx_level: self.avx_level,
            stall_fraction: self.stall_fraction,
            eet_limit_mhz: self.eet_limit_mhz,
            avg_pkg_w: self.avg_pkg_w,
        }
    }

    /// Scalar mirror of the controller's `power_at`: the same electrical
    /// sums without the stack array. Active cores are identical, so adding
    /// one core's term `active` times reproduces the array loop's running
    /// sums bit-for-bit (idle ungated cores contribute leakage at the
    /// minimum p-state and an exactly-zero dynamic term, also in order).
    fn power_at(&self, core_mhz: f64, uncore_mhz: f64) -> f64 {
        let spec = self.spec;
        let c = &spec.power;
        let active = self.active_cores.min(spec.cores);
        let idle = spec.cores.saturating_sub(self.active_cores);
        let gated = self.gated_idle_cores.min(idle);
        let mut leak = 0.0;
        let mut dyn_w = 0.0;
        if active > 0 {
            let mhz = core_mhz.round() as u32;
            let v = spec.core_vf.voltage_at(mhz.max(spec.freq.min_mhz));
            let leak_term = c.core_leak_w_per_v2 * v * v;
            let avx = match self.avx_level {
                0 => 1.0,
                1 => c.avx_power_mult,
                _ => c.avx512_power_mult,
            };
            let dyn_term =
                c.core_dyn_w_per_v2ghz * v * v * (mhz as f64 / 1000.0) * self.activity * avx;
            for _ in 0..active {
                leak += leak_term;
                dyn_w += dyn_term;
            }
        }
        let idle_ungated = spec.cores.saturating_sub(active + gated);
        if idle_ungated > 0 {
            let v = spec.core_vf.voltage_at(spec.freq.min_mhz);
            let leak_term = c.core_leak_w_per_v2 * v * v;
            // The array loop also adds each idle core's dynamic term, which
            // is exactly 0.0 (activity 0) — a bit-level no-op.
            for _ in 0..idle_ungated {
                leak += leak_term;
            }
        }
        let umhz = uncore_mhz.round() as u32;
        let vu = spec.uncore_vf.voltage_at(umhz);
        let uncore_w = c.uncore_dyn_w_per_v2ghz * vu * vu * (umhz as f64 / 1000.0);
        let mult = self.socket_power_mult;
        c.pkg_base_w + leak * mult + dyn_w * mult + uncore_w * mult
    }

    /// Mirror of the controller's `ufs_target_for`: UFS target keyed by the
    /// actual core frequency mapped onto the Table III schedule bins.
    fn ufs_target_for(&self, core_mhz: f64, epb: EpbClass) -> f64 {
        let spec = self.spec;
        let setting = if core_mhz > spec.freq.base_mhz as f64 + 50.0 {
            FreqSetting::Turbo
        } else {
            let bin = ((core_mhz / 100.0).round() as u32 * 100)
                .clamp(spec.freq.min_mhz, spec.freq.base_mhz);
            FreqSetting::Fixed(PState::from_mhz(bin))
        };
        ufs::ufs_target_mhz(
            spec,
            &UfsInputs {
                fastest_setting: setting,
                socket_active: self.active_cores > 0,
                epb,
                stall_fraction: self.stall_fraction,
                package_sleep: false,
            },
        ) as f64
    }

    /// Mirror of the controller's `max_core_within` bisection.
    fn max_core_within(&self, ceiling_mhz: f64, uncore_mhz: f64, budget_w: f64) -> f64 {
        let floor = self.spec.freq.min_mhz as f64;
        if self.power_at(ceiling_mhz, uncore_mhz) <= budget_w {
            return ceiling_mhz;
        }
        let (mut lo, mut hi) = (floor, ceiling_mhz);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if self.power_at(mid, uncore_mhz) <= budget_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Mirror of the controller's `max_uncore_within` bisection.
    fn max_uncore_within(&self, core_mhz: f64, lo_mhz: f64, hi_mhz: f64, budget_w: f64) -> f64 {
        if self.power_at(core_mhz, hi_mhz) <= budget_w {
            return hi_mhz;
        }
        let (mut lo, mut hi) = (lo_mhz, hi_mhz);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if self.power_at(core_mhz, mid) <= budget_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Mirror of `PcuController::solve` over the scalar power model.
    fn solve(&self) -> SteadyGrant {
        let spec = self.spec;
        if self.active_cores == 0 {
            let fu = ufs::ufs_target_mhz(
                spec,
                &UfsInputs {
                    fastest_setting: self.setting,
                    socket_active: false,
                    epb: self.epb,
                    stall_fraction: 0.0,
                    package_sleep: false,
                },
            ) as f64;
            let fc = spec.freq.min_mhz as f64;
            return SteadyGrant {
                core_mhz: fc,
                uncore_mhz: fu,
                power_w: self.power_at(fc, fu),
                power_limited: false,
            };
        }

        let ceiling = PcuController::core_ceiling_mhz(&self.to_pcu_inputs()) as f64;
        let pl_base = (2.0 * spec.tdp_w - self.avg_pkg_w)
            .clamp(spec.tdp_w * 0.9, spec.tdp_w * calib::PL2_TDP_MULT);
        let budget = pl_base * epb_budget_factor(self.epb);

        let solve_with_epb = |ufs_epb: EpbClass| {
            let mut fc = ceiling;
            let mut fu = self.ufs_target_for(fc, ufs_epb);
            for _ in 0..24 {
                let fc_new = self.max_core_within(ceiling, fu, budget);
                fc = 0.5 * (fc + fc_new);
                fu = self.ufs_target_for(fc, ufs_epb);
            }
            (fc, fu)
        };
        let (mut fc, mut fu) = solve_with_epb(self.epb);
        let mut power_limited = fc < ceiling - 5.0;
        if power_limited && self.epb == EpbClass::Performance {
            let (fc2, fu2) = solve_with_epb(EpbClass::Balanced);
            fc = fc2;
            fu = fu2;
            power_limited = fc < ceiling - 5.0;
        }

        if !power_limited && ufs::stall_boost_allowed(spec, self.stall_fraction) {
            fc = ceiling;
            let fu_max = spec.freq.uncore_max_mhz as f64;
            let boosted = self.max_uncore_within(fc, fu, fu_max, budget);
            if boosted > fu {
                fu = boosted;
                power_limited = fu < fu_max - 5.0;
            }
        } else if power_limited {
            fc = self.max_core_within(ceiling, fu, budget);
        }

        let fu = fu.clamp(
            spec.freq.uncore_min_mhz as f64,
            spec.freq.uncore_max_mhz as f64,
        );
        SteadyGrant {
            core_mhz: fc,
            uncore_mhz: fu,
            power_w: self.power_at(fc, fu),
            power_limited,
        }
    }
}

/// The closed-form surrogate for one concrete node (nominal or one
/// manufactured unit of a fleet).
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    node: NodeSpec,
    eet_enabled: bool,
}

impl AnalyticModel {
    /// A model of the given node spec (already varied/capped if desired).
    pub fn from_node_spec(node: &NodeSpec, eet_enabled: bool) -> Self {
        AnalyticModel {
            node: node.clone(),
            eet_enabled,
        }
    }

    /// A model of one manufactured unit: the nominal node with `var`
    /// applied through the same [`ChipVariation::apply`] transformation the
    /// fleet executor uses, so a chip's analytic identity is exactly its
    /// simulated identity.
    pub fn for_chip(nominal: &NodeSpec, var: &ChipVariation, eet_enabled: bool) -> Self {
        AnalyticModel {
            node: var.apply(nominal),
            eet_enabled,
        }
    }

    /// Apply a package power cap the way the fleet harness does: by
    /// replacing the enforced TDP.
    pub fn with_cap_w(mut self, cap_w: Option<f64>) -> Self {
        if let Some(cap) = cap_w {
            self.node.sku.tdp_w = cap;
        }
        self
    }

    /// The (possibly varied/capped) node this model answers for.
    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// Predict the steady-state operating point of every socket.
    pub fn predict(&self, pt: &OperatingPoint<'_>) -> NodePrediction {
        let spec = &self.node.sku;
        let duty = pt.profile.duty.mean_factor();
        let active = pt.active_cores.min(spec.cores);
        // Steady state: the governor parks every idle core in C6.
        let gated = spec.cores - active;
        let (activity, stall, avx_level) = if active > 0 {
            (
                pt.profile.activity(pt.smt) * duty,
                pt.profile.stall_fraction,
                u8::from(pt.profile.avx_heavy),
            )
        } else {
            (0.0, 0.0, 0)
        };
        // EET acts on its sporadically polled stall estimate, which at
        // steady state is the duty-weighted stall the socket feeds it.
        let eet_limit_mhz = if self.eet_enabled {
            let mut eet = EetController::new(true);
            eet.tick(0, stall * duty.min(1.0));
            eet.limit_mhz(spec, pt.epb, spec.freq.turbo_mhz(active.max(1)))
        } else {
            u32::MAX
        };
        let housekeeping_w =
            calib::IDLE_PKG_HOUSEKEEPING_W * ((spec.cores - active) as f64 / spec.cores as f64);
        let avg_pkg_w = steady_avg_pkg_w(spec, pt.epb, housekeeping_w);

        let sockets = (0..self.node.sockets)
            .map(|s| {
                let solve = SteadySolve {
                    spec,
                    socket_power_mult: self.node.socket_power_mult[s],
                    setting: pt.setting,
                    epb: pt.epb,
                    turbo_enabled: pt.turbo_enabled,
                    active_cores: active,
                    gated_idle_cores: gated,
                    activity,
                    avx_level,
                    stall_fraction: stall,
                    eet_limit_mhz,
                    avg_pkg_w,
                };
                let grant = solve.solve();
                let core_ghz = grant.core_mhz / 1000.0;
                let uncore_ghz = grant.uncore_mhz / 1000.0;
                let gips = if active > 0 {
                    pt.profile.ipc(pt.smt, core_ghz, uncore_ghz.max(0.1)) * core_ghz * duty
                } else {
                    0.0
                };
                SocketPrediction {
                    core_ghz,
                    uncore_ghz,
                    gips,
                    // What the meter reports: model power plus the OS idle
                    // housekeeping, through the chip's metering trim. The
                    // package-c-state uncore residual and wake transients
                    // are deliberately unmodeled (crate docs).
                    pkg_w: (grant.power_w + housekeeping_w) * spec.power.rapl_trim_gain,
                    power_limited: grant.power_limited,
                }
            })
            .collect();
        NodePrediction { sockets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_fleet::VariationModel;
    use hsw_power::{package_power_w, CoreElecState};

    fn haswell() -> NodeSpec {
        NodeSpec::paper_test_node()
    }

    fn skylake() -> NodeSpec {
        NodeSpec::skylake_sp_node()
    }

    /// The controller's own `power_at`, reconstructed verbatim over the
    /// real electrical model — the oracle for the scalar mirror.
    fn array_power_at(s: &SteadySolve<'_>, core_mhz: f64, uncore_mhz: f64) -> f64 {
        const MAX_CORES: usize = 64;
        let spec = s.spec;
        let mut cores = [CoreElecState::gated(); MAX_CORES];
        let active = s.active_cores.min(spec.cores);
        let idle = spec.cores.saturating_sub(s.active_cores);
        let gated = s.gated_idle_cores.min(idle);
        for c in cores.iter_mut().take(active) {
            *c = CoreElecState {
                mhz: core_mhz.round() as u32,
                activity: s.activity,
                license_level: s.avx_level,
                power_gated: false,
            };
        }
        for c in cores.iter_mut().take(spec.cores).skip(active + gated) {
            *c = CoreElecState {
                mhz: spec.freq.min_mhz,
                activity: 0.0,
                license_level: 0,
                power_gated: false,
            };
        }
        package_power_w(
            spec,
            s.socket_power_mult,
            &cores[..spec.cores],
            uncore_mhz.round() as u32,
        )
        .total_w()
    }

    fn envelope(spec: &SkuSpec) -> Vec<SteadySolve<'_>> {
        let mut points = Vec::new();
        let profiles = [
            WorkloadProfile::firestarter(),
            WorkloadProfile::compute(),
            WorkloadProfile::memory_bound(),
            WorkloadProfile::busy_wait(),
        ];
        for profile in &profiles {
            for setting in [
                FreqSetting::Turbo,
                FreqSetting::from_mhz(spec.freq.base_mhz),
                FreqSetting::from_mhz(spec.freq.base_mhz - 400),
                FreqSetting::from_mhz(spec.freq.min_mhz),
            ] {
                for active in [1, spec.cores / 2, spec.cores] {
                    for epb in [
                        EpbClass::Performance,
                        EpbClass::Balanced,
                        EpbClass::EnergySaving,
                    ] {
                        for cap in [None, Some(spec.tdp_w * 0.6)] {
                            let duty = profile.duty.mean_factor();
                            let stall = profile.stall_fraction;
                            let mut eet = EetController::new(true);
                            eet.tick(0, stall * duty.min(1.0));
                            let eet_limit =
                                eet.limit_mhz(spec, epb, spec.freq.turbo_mhz(active.max(1)));
                            let h = calib::IDLE_PKG_HOUSEKEEPING_W
                                * ((spec.cores - active) as f64 / spec.cores as f64);
                            let mut capped = spec.clone();
                            if let Some(c) = cap {
                                capped.tdp_w = c;
                            }
                            let avg = steady_avg_pkg_w(&capped, epb, h);
                            points.push(SteadySolve {
                                spec: Box::leak(Box::new(capped)),
                                socket_power_mult: 1.012,
                                setting,
                                epb,
                                turbo_enabled: true,
                                active_cores: active,
                                gated_idle_cores: spec.cores - active,
                                activity: profile.activity(true) * duty,
                                avx_level: u8::from(profile.avx_heavy),
                                stall_fraction: stall,
                                eet_limit_mhz: eet_limit,
                                avg_pkg_w: avg,
                            });
                        }
                    }
                }
            }
        }
        // Idle socket.
        points.push(SteadySolve {
            spec: Box::leak(Box::new(spec.clone())),
            socket_power_mult: 1.0,
            setting: FreqSetting::Turbo,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 0,
            gated_idle_cores: spec.cores,
            activity: 0.0,
            avx_level: 0,
            stall_fraction: 0.0,
            eet_limit_mhz: u32::MAX,
            avg_pkg_w: 12.0,
        });
        points
    }

    #[test]
    fn scalar_power_is_bit_exact_vs_the_electrical_array() {
        for node in [haswell(), skylake()] {
            for s in envelope(&node.sku) {
                for (fc, fu) in [
                    (s.spec.freq.min_mhz as f64, 1200.0),
                    (2147.3, 2433.9),
                    (s.spec.freq.base_mhz as f64, 2999.6),
                    (3300.0, s.spec.freq.uncore_max_mhz as f64),
                ] {
                    let scalar = s.power_at(fc, fu);
                    let array = array_power_at(&s, fc, fu);
                    assert_eq!(
                        scalar.to_bits(),
                        array.to_bits(),
                        "{} fc={fc} fu={fu}: scalar {scalar} vs array {array}",
                        s.spec.model
                    );
                }
            }
        }
    }

    #[test]
    fn steady_solve_is_bit_exact_vs_pcu_controller() {
        for node in [haswell(), skylake()] {
            for s in envelope(&node.sku) {
                let mine = s.solve();
                let real = PcuController::solve(&s.to_pcu_inputs());
                assert_eq!(
                    mine.core_mhz.to_bits(),
                    real.core_mhz.to_bits(),
                    "{} {:?} active={}: core {} vs {}",
                    s.spec.model,
                    s.setting,
                    s.active_cores,
                    mine.core_mhz,
                    real.core_mhz
                );
                assert_eq!(mine.uncore_mhz.to_bits(), real.uncore_mhz.to_bits());
                assert_eq!(mine.power_w.to_bits(), real.power_w.to_bits());
                assert_eq!(mine.power_limited, real.power_limited);
            }
        }
    }

    #[test]
    fn steady_average_is_a_fixed_point_of_the_limiter() {
        for node in [haswell(), skylake()] {
            let spec = &node.sku;
            for epb in [
                EpbClass::Performance,
                EpbClass::Balanced,
                EpbClass::EnergySaving,
            ] {
                for (tdp, h) in [(spec.tdp_w, 0.0), (70.0, 2.1), (40.0, 3.6)] {
                    let mut capped = spec.clone();
                    capped.tdp_w = tdp;
                    let avg = steady_avg_pkg_w(&capped, epb, h);
                    // Granting exactly the budget this average yields must
                    // reproduce the average: avg = g · (budget(avg) + h).
                    let pl_base = (2.0 * tdp - avg).clamp(tdp * 0.9, tdp * calib::PL2_TDP_MULT);
                    let budget = pl_base * epb_budget_factor(epb);
                    let re_avg = capped.power.rapl_trim_gain * (budget + h);
                    assert!(
                        (re_avg - avg).abs() < 1e-9,
                        "{} {epb:?} tdp={tdp}: {avg} vs {re_avg}",
                        spec.model
                    );
                }
            }
        }
    }

    #[test]
    fn firestarter_turbo_lands_on_the_table4_equilibrium() {
        // Paper Table IV: FIRESTARTER at turbo settles near (2.31 GHz core,
        // 2.34 GHz uncore) at exactly the 120 W TDP.
        let model = AnalyticModel::from_node_spec(&haswell(), true);
        let fs = WorkloadProfile::firestarter();
        let pt = OperatingPoint {
            profile: &fs,
            setting: FreqSetting::Turbo,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 12,
            smt: true,
        };
        let p = model.predict(&pt);
        assert_eq!(p.sockets.len(), 2);
        for s in &p.sockets {
            assert!(s.power_limited, "turbo FIRESTARTER must hit the limiter");
            assert!(
                (2.2..=2.4).contains(&s.core_ghz),
                "core {:.3} GHz",
                s.core_ghz
            );
            assert!((s.pkg_w - 120.0).abs() < 2.0, "pkg {:.1} W", s.pkg_w);
        }
        // Socket 0 is electrically worse, so its capped frequency is lower.
        assert!(p.sockets[0].core_ghz < p.sockets[1].core_ghz);
        assert!((p.node_pkg_w() - 240.0).abs() < 4.0);
    }

    #[test]
    fn firestarter_2100_runs_uncapped_with_boosted_uncore() {
        // Paper Section V-B: at 2.1 GHz FIRESTARTER stays under the TDP and
        // the headroom drives the uncore to its 3.0 GHz maximum.
        let model = AnalyticModel::from_node_spec(&haswell(), true);
        let fs = WorkloadProfile::firestarter();
        let pt = OperatingPoint {
            profile: &fs,
            setting: FreqSetting::from_mhz(2100),
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 12,
            smt: true,
        };
        for s in &model.predict(&pt).sockets {
            assert!((s.core_ghz - 2.1).abs() < 0.01, "core {:.3}", s.core_ghz);
            assert!(
                (s.uncore_ghz - 3.0).abs() < 0.02,
                "uncore {:.3}",
                s.uncore_ghz
            );
            assert!(s.pkg_w < 120.0, "pkg {:.1} W", s.pkg_w);
        }
    }

    #[test]
    fn memory_bound_is_eet_capped_at_base() {
        // Stall 0.85 > 0.60: EET holds the grant at the base frequency for
        // non-performance EPB.
        let node = haswell();
        let mb = WorkloadProfile::memory_bound();
        let pt = OperatingPoint {
            profile: &mb,
            setting: FreqSetting::Turbo,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 12,
            smt: false,
        };
        let capped = AnalyticModel::from_node_spec(&node, true).predict(&pt);
        assert!(capped.sockets[1].core_ghz <= 2.5 + 1e-9);
        let uncapped = AnalyticModel::from_node_spec(&node, false).predict(&pt);
        assert!(uncapped.sockets[1].core_ghz > capped.sockets[1].core_ghz);
    }

    #[test]
    fn idle_prediction_is_the_passive_floor() {
        let model = AnalyticModel::from_node_spec(&haswell(), true);
        let idle = WorkloadProfile::idle();
        let pt = OperatingPoint {
            profile: &idle,
            setting: FreqSetting::Turbo,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 0,
            smt: false,
        };
        for s in &model.predict(&pt).sockets {
            assert!((s.core_ghz - 1.2).abs() < 1e-9);
            assert_eq!(s.gips, 0.0);
            assert!(!s.power_limited);
            // Gated cores leak nothing; the passive UFS keeps the uncore up
            // for a Turbo-class setting, so an idle socket still burns tens
            // of watts — the documented idle divergence vs. the simulator's
            // package-sleep residual.
            assert!((8.0..60.0).contains(&s.pkg_w), "idle pkg {:.1}", s.pkg_w);
        }
    }

    #[test]
    fn power_cap_converts_chip_spread_into_frequency_spread() {
        // The Schuchart phenomenology the fleet experiments measure, now in
        // closed form: uncapped chips agree in frequency and differ in
        // power; capped chips agree in power and differ in frequency.
        let nominal = haswell();
        let compute = WorkloadProfile::compute();
        let pt = OperatingPoint::new(&compute, FreqSetting::Turbo, 5);
        let vm = VariationModel::paper_fleet();
        let chips: Vec<_> = (0..24)
            .map(|seed| ChipVariation::sample(&vm, seed))
            .collect();
        let predict = |cap: Option<f64>| -> Vec<SocketPrediction> {
            chips
                .iter()
                .map(|v| {
                    AnalyticModel::for_chip(&nominal, v, true)
                        .with_cap_w(cap)
                        .predict(&pt)
                        .sockets[0]
                })
                .collect()
        };
        let spread = |xs: &[f64]| -> f64 {
            let (lo, hi) = xs
                .iter()
                .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (hi - lo) / mean
        };
        let free = predict(None);
        let capped = predict(Some(45.0));
        let f_freq = spread(&free.iter().map(|s| s.core_ghz).collect::<Vec<_>>());
        let f_pow = spread(&free.iter().map(|s| s.pkg_w).collect::<Vec<_>>());
        let c_freq = spread(&capped.iter().map(|s| s.core_ghz).collect::<Vec<_>>());
        let c_pow = spread(&capped.iter().map(|s| s.pkg_w).collect::<Vec<_>>());
        assert!(
            capped.iter().all(|s| s.power_limited),
            "45 W must cap every chip"
        );
        assert!(
            c_freq > f_freq,
            "cap: freq spread {c_freq} vs free {f_freq}"
        );
        assert!(c_pow < f_pow, "cap: power spread {c_pow} vs free {f_pow}");
    }

    #[test]
    fn nominal_chip_model_equals_the_nominal_spec_model() {
        let nominal = haswell();
        let fs = WorkloadProfile::firestarter();
        let pt = OperatingPoint {
            profile: &fs,
            setting: FreqSetting::Turbo,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 12,
            smt: true,
        };
        let a = AnalyticModel::from_node_spec(&nominal, true).predict(&pt);
        let b = AnalyticModel::for_chip(&nominal, &ChipVariation::nominal(), true).predict(&pt);
        assert_eq!(a, b);
    }

    #[test]
    fn skylake_predictions_use_the_mesh_envelope() {
        let model = AnalyticModel::from_node_spec(&skylake(), true);
        let compute = WorkloadProfile::compute();
        let pt = OperatingPoint {
            profile: &compute,
            setting: FreqSetting::Turbo,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 26,
            smt: true,
        };
        for s in &model.predict(&pt).sockets {
            assert!(s.uncore_ghz <= 2.4 + 1e-9, "mesh caps at 2.4 GHz");
            assert!(s.core_ghz <= 2.8 + 1e-9, "26-core turbo bin is 2.8 GHz");
            assert!(s.pkg_w <= 165.0 + 2.0, "pkg {:.1} W", s.pkg_w);
        }
    }
}
