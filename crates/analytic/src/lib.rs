//! # hsw-analytic — closed-form surrogate for the node simulator
//!
//! The survey's sweeps pay a simulated settle per point even though, at
//! steady state, the simulator's operating point is the fixed point of a
//! small set of firmware control laws. Hofmann/Hager (arXiv:1803.01618)
//! show that exactly this class of sweep — frequency/concurrency ladders of
//! a constant workload — is answered well by an analytic ECM-style model;
//! their Skylake-SP follow-up (arXiv:1905.12468) covers the second platform
//! this repo simulates. This crate is that model, parameterized from the
//! same [`SkuSpec`](hsw_hwspec::SkuSpec) the simulator runs on, so both
//! generations (and every fleet-varied chip in between) come for free.
//!
//! ## The model
//!
//! Package power is the simulator's own electrical composition
//! (`hsw-power`, paper Sections III/IV):
//!
//! ```text
//! P(f_c, f_u) = P_base
//!             + mult · Σ_cores  leak · V(f_c)²                    (static)
//!             + mult · Σ_active dyn  · V(f_c)² · f_c · a · avx    (dynamic)
//!             + mult · unc · V_u(f_u)² · f_u                      (uncore)
//! ```
//!
//! and the runtime side is the workload's IPC law `ipc(f_c, f_u)` times the
//! granted core clock and mean duty factor. The *grant* comes from a scalar
//! replica of the PCU equilibrium solver ([`hsw_pcu::PcuController`]): the
//! same ceiling logic (turbo bins, AVX license, EET, EPB turbo-at-base),
//! the same damped core/uncore fixed-point iteration against the RAPL
//! budget, and the same stall-driven uncore boost — evaluated without the
//! per-core state array, so one point costs microseconds instead of a
//! simulated settle. The replica is *bit-exact* against
//! `PcuController::solve` (asserted in this crate's tests): every floating
//! point operation happens in the same order on the same values.
//!
//! What the closed form adds over the solver is the steady limiter state.
//! The two-level RAPL limiter grants `e · clamp(2·TDP − avg, 0.9·TDP,
//! PL2·TDP)` and the running average converges to `g · (P + H)` (metering
//! trim `g`, idle housekeeping `H`), so the steady granted power solves
//!
//! ```text
//! P* = e · clamp(2·TDP − g·(P* + H), 0.9·TDP, PL2·TDP)
//! ```
//!
//! which this crate solves in closed form ([`steady_avg_pkg_w`]) and feeds
//! back as the solver's `avg_pkg_w` input. Monotonicity of power in both
//! frequencies makes the single resulting solve exact in *all* regimes:
//! power-limited points land on `P*` by construction, and unlimited points
//! take the solver's early-return paths, which are budget-insensitive.
//!
//! ## Where the model is wrong — on purpose
//!
//! The surrogate reproduces arXiv:1803.01618's conclusions about where
//! analytic models break, and the `analytic_accuracy` experiment measures
//! exactly these:
//!
//! * **C-state transients / idle packages**: the model prices an idle core
//!   at its steady C6 residency and omits the package-c-state uncore
//!   residual and wake transients, so idle and mostly-idle points diverge.
//! * **Duty-cycle transients**: periodic workloads enter as their long-run
//!   [`mean_factor`](hsw_exec::workloads::DutyCycle::mean_factor); finite
//!   measurement windows that cut a period mid-cycle disagree.
//! * **RAPL-capped regions**: the simulator's limiter average converges
//!   exponentially and dithers across frequency bins; the model reports the
//!   fixed point it converges *to*, so short settles under a tight cap show
//!   the largest (still small) error.
//!
//! Determinism: this crate is pure arithmetic over its inputs — no clocks,
//! no RNG, no hashing — so surrogate results are byte-identical at any
//! `--jobs`/pool width by construction. Fleet variation reuses
//! [`ChipVariation::apply`](hsw_fleet::ChipVariation::apply), keeping a
//! chip's analytic identity equal to its simulated identity.

pub mod model;

pub use model::{
    steady_avg_pkg_w, AnalyticModel, NodePrediction, OperatingPoint, SocketPrediction,
};
