//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/tuple/`Just`/`any`/`prop_oneof!`
//! strategies, `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: each test runs
//! `ProptestConfig::cases` random cases from a generator seeded
//! deterministically from the test's module path, so failures reproduce
//! exactly on rerun. The first failing case panics with the sampled
//! inputs via the `prop_assert*` message.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Run-configuration subset: number of random cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; 64 keeps the heavy
        // simulation properties affordable in debug builds while still
        // sweeping the input space.
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic per-test generator handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seed from a stable string (the test's `module_path!()::name`).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a, so the seed depends only on the test name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

/// A value generator (the sampling core of proptest's `Strategy`).
pub trait Strategy {
    type Value;
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// One boxed `prop_oneof!` arm: a sampler closing over its strategy.
pub type OneOfArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between boxed strategy arms (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<OneOfArm<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<OneOfArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample_one(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Box one `prop_oneof!` arm. A plain function (rather than an `as _`
/// cast inside the macro) so the arms' value types unify through the
/// `Vec` element type — `prop_oneof![Just(32usize), Just(64)]` must
/// infer `64: usize`, not let it fall back to `i32`.
pub fn one_of_arm<S: Strategy + 'static>(s: S) -> OneOfArm<S::Value> {
    Box::new(move |rng| s.sample_one(rng))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length. Mirrors real
    /// proptest's `SizeRange` so integer-literal ranges passed to [`vec`]
    /// infer `usize` (a plain `Strategy<Value = usize>` bound would not
    /// drive literal inference).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection::vec: empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.sample_one(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ config ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ config ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::sample_one(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_cases!{ config ($cfg); $($rest)* }
    };
    (config ($cfg:expr);) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::one_of_arm($arm)),+])
    };
}

/// Reject the current case when its precondition fails. The shim runs
/// each property body inside the cases loop, so rejection is simply
/// `continue` — the case is skipped, not retried (no resampling budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("proptest assertion failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            panic!("proptest assertion failed: {:?} != {:?}", __a, __b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            panic!(
                "proptest assertion failed: {:?} != {:?}: {}",
                __a, __b, format!($($fmt)+)
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!("proptest assertion failed: {:?} == {:?}", __a, __b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!(
                "proptest assertion failed: {:?} == {:?}: {}",
                __a, __b, format!($($fmt)+)
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 0u32..10, y in -1.5f64..=1.5) {
            prop_assert!(x < 10);
            prop_assert!((-1.5..=1.5).contains(&y), "y = {}", y);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]
        #[test]
        fn config_header_is_honored(v in crate::collection::vec((0usize..4, 0.0f64..1.0), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (i, f) in v {
                prop_assert!(i < 4 && (0.0..1.0).contains(&f));
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_any(choice in prop_oneof![Just(1u8), Just(3), Just(5)], b in any::<bool>()) {
            prop_assert!(choice % 2 == 1);
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn same_name_means_same_stream() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
