//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! The build environment has no registry access, so `syn`/`quote` are not
//! available; the item is parsed directly from the `proc_macro` token
//! stream. Supported shapes — which cover every derive in this workspace:
//! non-generic named-field structs, tuple structs, unit structs, and enums
//! whose variants are unit, tuple, or struct-like. `#[serde(...)]`
//! attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: named (`Some(name)`) or positional (`None`).
struct Field {
    name: Option<String>,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Outer attributes and visibility.
    loop {
        match tts.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tts.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tts.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tts.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tts.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Split a field-list token stream on commas, honoring `<...>` nesting
/// (angle brackets are punctuation, not groups, in token streams).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut j = 0;
            loop {
                match tokens.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = tokens.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    _ => break,
                }
            }
            match tokens.get(j) {
                Some(TokenTree::Ident(id)) => Field {
                    name: Some(id.to_string()),
                },
                other => panic!("serde derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut j = 0;
            while let Some(TokenTree::Punct(p)) = tokens.get(j) {
                if p.as_char() == '#' {
                    j += 2;
                } else {
                    break;
                }
            }
            let name = match tokens.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive: expected variant name, got {other:?}"),
            };
            j += 1;
            let shape = match tokens.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(
                        parse_named_fields(g.stream())
                            .into_iter()
                            .map(|f| f.name.expect("named variant field"))
                            .collect(),
                    )
                }
                // Unit variant, possibly with an explicit `= discriminant`
                // (already split at commas, so just ignore the tail).
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    format!(
                        "__fields.push((::std::string::String::from(\"{fname}\"), \
                         ::serde::Serialize::to_value(&self.{fname})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __fields = ::std::vec::Vec::new();\n{pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::variant(\
                             \"{vname}\", ::serde::Serialize::to_value(__f0)),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::variant(\
                                 \"{vname}\", ::serde::Value::Array(vec![{}])),\n",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::variant(\
                                 \"{vname}\", ::serde::Value::Object(vec![{}])),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = f.name.as_ref().unwrap();
                    format!(
                        "{fname}: ::serde::Deserialize::from_value(\
                         ::serde::object_field(__obj, \"{fname}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"array of {n}\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(_inner)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __arr = _inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"array of {n}\", \"{name}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::object_field(__obj, \"{f}\", \"{name}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __obj = _inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"known unit variant\", \"{name}\")),\n}},\n\
                 _ => {{\n\
                 let (_tag, _inner) = __v.as_variant().ok_or_else(|| \
                 ::serde::DeError::expected(\"variant object\", \"{name}\"))?;\n\
                 match _tag {{\n{data_arms}\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"known variant\", \"{name}\")),\n}}\n}}\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl must parse")
}
