//! Offline stand-in for the subset of the `rayon` API this workspace uses,
//! backed by a real work-stealing thread pool.
//!
//! Surface: `slice.par_iter()` / `vec.par_iter()` with
//! `map`/`enumerate`/`collect`/`sum` ([`IndexedParallelIterator`]), plus
//! [`scope`], [`join`], and explicit [`ThreadPool`]s with
//! [`ThreadPool::install`] for benches that pin a pool size. The global
//! pool is lazily created and honors `RAYON_NUM_THREADS`.
//!
//! Determinism contract: terminal operations deliver results **in index
//! order**, and float reductions add in index order, so output bytes never
//! depend on the pool size or the steal schedule — only wall-clock time
//! does. See `pool` for the scheduling design (per-worker deques, LIFO
//! pop, steal-half FIFO).

mod iter;
mod pool;

pub use iter::{
    Enumerate, FromIndexedParallelIterator, IndexedParallelIterator, IntoParallelRefIterator, Iter,
    Map,
};
pub use pool::{current_num_threads, join, scope, Scope, ThreadPool};

pub mod prelude {
    pub use crate::iter::{
        FromIndexedParallelIterator, IndexedParallelIterator, IntoParallelRefIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, scope, ThreadPool};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn par_iter_preserves_order_and_adapters() {
        let xs = vec![10, 20, 30];
        let ys: Vec<(usize, i32)> = xs.par_iter().enumerate().map(|(i, v)| (i, v * 2)).collect();
        assert_eq!(ys, vec![(0, 20), (1, 40), (2, 60)]);
        let arr = [1, 2, 3];
        let sum: i32 = arr[..].par_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn collect_preserves_index_order_under_stealing() {
        // Many more tasks than workers, with deliberately skewed task
        // durations so the steal path is exercised; the collected output
        // must still be in input order, on any pool size.
        let inputs: Vec<usize> = (0..256).collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let out: Vec<usize> = pool.install(|| {
                inputs
                    .par_iter()
                    .map(|&i| {
                        if i % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        i * i
                    })
                    .collect()
            });
            let expect: Vec<usize> = inputs.iter().map(|&i| i * i).collect();
            assert_eq!(out, expect, "order broke at {threads} threads");
        }
    }

    #[test]
    fn pool_sizes_produce_identical_float_sums() {
        // Float addition is not associative; the contract is that sums are
        // performed in index order, so any pool size gives the same bits.
        let xs: Vec<f64> = (0..500).map(|i| 1.0 / (i as f64 + 0.3)).collect();
        let sums: Vec<f64> = [1usize, 2, 8]
            .iter()
            .map(|&t| ThreadPool::new(t).install(|| xs.par_iter().map(|&x| x.sin()).sum::<f64>()))
            .collect();
        assert_eq!(sums[0].to_bits(), sums[1].to_bits());
        assert_eq!(sums[0].to_bits(), sums[2].to_bits());
    }

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_tasks_can_spawn_more_tasks() {
        let hits = Mutex::new(Vec::new());
        scope(|s| {
            s.spawn(|s| {
                hits.lock().unwrap().push("outer");
                s.spawn(|_| {
                    hits.lock().unwrap().push("inner");
                });
            });
        });
        let got = hits.into_inner().unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&"outer") && got.contains(&"inner"));
    }

    #[test]
    fn scope_panics_propagate_to_the_scope_owner() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom in task"));
                s.spawn(|_| { /* the healthy sibling still completes */ });
            });
        });
        let payload = result.expect_err("scope must rethrow the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .unwrap()
        });
        assert!(msg.contains("boom in task"), "{msg}");
    }

    #[test]
    fn nested_par_iter_does_not_deadlock_on_a_one_thread_pool() {
        let pool = ThreadPool::new(1);
        let out: Vec<usize> = pool.install(|| {
            let outer: Vec<usize> = (0..4).collect();
            outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<usize> = (0..4).collect();
                    inner.par_iter().map(|&j| i * 10 + j).sum::<usize>()
                })
                .collect()
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "b".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn env_override_is_honored_by_explicit_pools() {
        // The global pool reads RAYON_NUM_THREADS once; explicit pools pin
        // their size directly.
        assert_eq!(ThreadPool::new(3).current_num_threads(), 3);
        assert_eq!(ThreadPool::new(0).current_num_threads(), 1);
    }
}
