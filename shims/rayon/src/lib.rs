//! Offline stand-in for the subset of the `rayon` API this workspace uses
//! (`slice.par_iter().enumerate().map(..).collect()`).
//!
//! **This shim is sequential.** `par_iter()` returns the plain slice
//! iterator, so every standard `Iterator` adapter keeps working and results
//! keep their input order — but nothing here ever uses a second core.
//! The only parallelism in the workspace today is the survey runner
//! (`haswell_survey::survey`), which fans whole *experiments* out across
//! OS threads with a controllable `--jobs` count; each experiment's
//! internal frequency/concurrency sweep still walks its points serially
//! through this shim.

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// The `rayon::prelude::IntoParallelRefIterator` role: `.par_iter()` on
/// slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order_and_adapters() {
        let xs = vec![10, 20, 30];
        let ys: Vec<(usize, i32)> = xs.par_iter().enumerate().map(|(i, v)| (i, v * 2)).collect();
        assert_eq!(ys, vec![(0, 20), (1, 40), (2, 60)]);
        let arr = [1, 2, 3];
        let sum: i32 = arr[..].par_iter().sum();
        assert_eq!(sum, 6);
    }
}
