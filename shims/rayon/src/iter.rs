//! The `par_iter` adapter surface: indexed parallel iterators over slices
//! with `map`/`enumerate`/`collect`/`sum`.
//!
//! Every adapter chain boils down to `(len, item(index))`: the terminal
//! operations fan one task per index through the pool ([`crate::scope`])
//! and then assemble the output **in index order**, so the result is
//! bit-identical for any pool size and any steal schedule. The per-index
//! task granularity fits this workspace: a sweep point is a heavyweight
//! simulated node run, so task overhead is noise and per-point stealing
//! gives the best balance.

use std::sync::Mutex;

use crate::pool::scope;

/// The `rayon::prelude::IntoParallelRefIterator` role: `.par_iter()` on
/// slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter: IndexedParallelIterator<Item = Self::Item>;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        Iter { slice: self }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = Iter<'data, T>;

    fn par_iter(&'data self) -> Self::Iter {
        Iter { slice: self }
    }
}

/// A parallel iterator with a known length and random access by index.
/// All adapters preserve indexing, so terminal operations can always
/// restore input order.
pub trait IndexedParallelIterator: Send + Sync + Sized {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index`. Called exactly once per index, from
    /// whichever worker claimed that index's task.
    fn item(&self, index: usize) -> Self::Item;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run the chain on the pool and collect in index order.
    fn collect<C>(self) -> C
    where
        C: FromIndexedParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Run the chain on the pool and sum in index order (additions are
    /// performed in index order, so float sums are schedule-independent).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        to_ordered_vec(self).into_iter().sum()
    }
}

/// `.par_iter()` over a slice.
pub struct Iter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> IndexedParallelIterator for Iter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// Output of [`IndexedParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item(&self, index: usize) -> R {
        (self.f)(self.base.item(index))
    }
}

/// Output of [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.item(index))
    }
}

/// The `rayon::iter::FromParallelIterator` role, restricted to indexed
/// sources so order restoration is always possible.
pub trait FromIndexedParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: IndexedParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromIndexedParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: IndexedParallelIterator<Item = T>>(iter: I) -> Vec<T> {
        to_ordered_vec(iter)
    }
}

/// The execution engine: one pool task per index, results reassembled in
/// index order regardless of which worker computed what.
fn to_ordered_vec<I: IndexedParallelIterator>(iter: I) -> Vec<I::Item> {
    let n = iter.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![iter.item(0)];
    }
    let results: Mutex<Vec<(usize, I::Item)>> = Mutex::new(Vec::with_capacity(n));
    scope(|s| {
        let iter = &iter;
        let results = &results;
        for i in 0..n {
            s.spawn(move |_| {
                let value = iter.item(i);
                results.lock().unwrap().push((i, value));
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    debug_assert_eq!(out.len(), n, "a sweep task vanished");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, v)| v).collect()
}
