//! The work-stealing thread pool behind the `par_iter` adapters.
//!
//! Each worker owns a deque and pops tasks from its back (LIFO, so a
//! worker keeps chewing on what it just spawned); an out-of-work worker
//! steals the front *half* of a victim's deque in one lock acquisition
//! (FIFO — the oldest, largest-granularity work moves), which balances a
//! skewed load in O(log n) steal operations instead of one lock round-trip
//! per task. Tasks submitted from threads outside the pool land in a
//! shared injector queue that workers drain like any other victim.
//!
//! The global pool is created lazily on first use; its size comes from
//! `RAYON_NUM_THREADS` (a positive integer), falling back to
//! `available_parallelism`. Explicit pools ([`ThreadPool::new`]) exist for
//! benches and tests that need to compare sizes within one process;
//! [`ThreadPool::install`] moves a closure onto such a pool so every
//! `par_iter`/[`scope`]/[`join`] it performs runs there.
//!
//! Scheduling never leaks into results: the iterator adapters tag every
//! item with its index and deliver collected output in index order, so a
//! 1-thread pool and a 16-thread pool produce bit-identical values.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A lifetime-erased unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared state of one pool: the deques, the injector, and the sleep
/// protocol.
struct Registry {
    /// One deque per worker; the owner pops the back, thieves take from
    /// the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks submitted from threads outside this pool.
    injector: Mutex<VecDeque<Task>>,
    /// Number of queued-but-not-claimed tasks across all queues; the
    /// worker sleep condition. Incremented before a push, decremented by
    /// the claimer.
    pending: AtomicUsize,
    /// Sleep protocol: pushes notify under this lock, workers re-check
    /// `pending` under it before sleeping, so no wakeup is lost.
    sleep: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// Set for the lifetime of a worker thread: which registry it serves
    /// and its worker index there.
    static WORKER: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

impl Registry {
    fn new(threads: usize) -> Arc<Registry> {
        Arc::new(Registry {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Queue a task: onto the current worker's own deque when called from
    /// inside this pool, onto the injector otherwise.
    fn inject(self: &Arc<Self>, task: Task) {
        let own = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .filter(|(reg, _)| Arc::ptr_eq(reg, self))
                .map(|(_, idx)| *idx)
        });
        self.pending.fetch_add(1, Ordering::SeqCst);
        match own {
            Some(idx) => self.deques[idx].lock().unwrap().push_back(task),
            None => self.injector.lock().unwrap().push_back(task),
        }
        let _guard = self.sleep.lock().unwrap();
        self.wakeup.notify_all();
    }

    /// Steal the front half of `victim`, keeping the first task to run and
    /// parking the rest on `home` (the thief's own deque).
    fn steal_half(&self, victim: &Mutex<VecDeque<Task>>, home: Option<usize>) -> Option<Task> {
        let mut q = victim.lock().unwrap();
        let n = q.len();
        if n == 0 {
            return None;
        }
        let take = n.div_ceil(2);
        let mut batch: VecDeque<Task> = q.drain(..take).collect();
        drop(q);
        let first = batch.pop_front();
        if !batch.is_empty() {
            match home {
                Some(idx) => self.deques[idx].lock().unwrap().extend(batch),
                // No home deque (non-worker thief): put the rest back where
                // workers will find it.
                None => self.injector.lock().unwrap().extend(batch),
            }
        }
        first
    }

    /// Claim one task: own deque back first, then the injector, then the
    /// other workers' deques (steal-half). `me` is the calling worker's
    /// index in this registry, if any.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(idx) = me {
            if let Some(t) = self.deques[idx].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        if let Some(t) = self.steal_half(&self.injector, me) {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        let workers = self.deques.len();
        let start = me.map(|i| i + 1).unwrap_or(0);
        for off in 0..workers {
            let v = (start + off) % workers;
            if Some(v) == me {
                continue;
            }
            if let Some(t) = self.steal_half(&self.deques[v], me) {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        None
    }

    fn worker_loop(self: Arc<Self>, idx: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&self), idx)));
        loop {
            if let Some(task) = self.find_task(Some(idx)) {
                // Scope tasks catch their own panics; this backstop only
                // keeps the worker alive if a raw task ever slips through.
                let _ = catch_unwind(AssertUnwindSafe(task));
                continue;
            }
            let guard = self.sleep.lock().unwrap();
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                // Timed as a belt-and-braces fallback; the inject/notify
                // handshake under `sleep` already prevents lost wakeups.
                let _ = self
                    .wakeup
                    .wait_timeout(guard, Duration::from_millis(50))
                    .unwrap();
            }
        }
        WORKER.with(|w| *w.borrow_mut() = None);
    }

    /// Whether the current thread is one of this registry's workers.
    fn on_worker(self: &Arc<Self>) -> Option<usize> {
        WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .filter(|(reg, _)| Arc::ptr_eq(reg, self))
                .map(|(_, idx)| *idx)
        })
    }
}

/// Pool size for the global pool: `RAYON_NUM_THREADS` if set to a positive
/// integer, else `available_parallelism`.
fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// The registry the current thread schedules onto: its own pool when it is
/// a worker, the global pool otherwise.
fn current_registry() -> Arc<Registry> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .map(|(reg, _)| Arc::clone(reg))
            .unwrap_or_else(|| Arc::clone(&global_pool().registry))
    })
}

/// Number of worker threads in the pool the current thread schedules onto.
pub fn current_num_threads() -> usize {
    current_registry().deques.len()
}

/// An owned worker pool. The process-wide pool used by `par_iter` outside
/// any pool is created lazily with [`default_threads`]; explicit pools are
/// for tests and benches that pin a size.
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with exactly `threads` workers (floored at 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let registry = Registry::new(threads);
        let workers = (0..threads)
            .map(|idx| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("hsw-rayon-{idx}"))
                    .spawn(move || reg.worker_loop(idx))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { registry, workers }
    }

    pub fn current_num_threads(&self) -> usize {
        self.registry.deques.len()
    }

    /// Execute `op` inside this pool: it runs on one of the workers, so
    /// every `par_iter`, [`scope`] and [`join`] it performs schedules onto
    /// this pool instead of the global one. Blocks until `op` returns;
    /// panics from `op` propagate.
    pub fn install<R, OP>(&self, op: OP) -> R
    where
        R: Send,
        OP: FnOnce() -> R + Send,
    {
        if self.registry.on_worker().is_some() {
            return op();
        }
        struct DoneSlot<R> {
            result: Mutex<Option<std::thread::Result<R>>>,
            done: Condvar,
        }
        let slot = Arc::new(DoneSlot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        {
            let slot = Arc::clone(&slot);
            let task: Box<dyn FnOnce() + Send> = Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(op));
                *slot.result.lock().unwrap() = Some(r);
                slot.done.notify_all();
            });
            // SAFETY: `install` blocks until the task has stored its result,
            // so every borrow captured by `op` outlives the task.
            let task = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send>, Box<dyn FnOnce() + Send + 'static>>(
                    task,
                )
            };
            self.registry.inject(task);
        }
        let mut guard = slot.result.lock().unwrap();
        while guard.is_none() {
            guard = slot.done.wait(guard).unwrap();
        }
        match guard.take().unwrap() {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.registry.sleep.lock().unwrap();
            self.registry.wakeup.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Book-keeping shared by a [`Scope`] and its spawned tasks.
struct ScopeInner {
    registry: Arc<Registry>,
    /// Spawned-but-unfinished task count.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload from any task; re-thrown when the scope closes.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeInner {
    fn task_finished(&self) {
        let mut n = self.pending.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every spawned task has finished. A pool worker helps
    /// drain its registry while it waits (this is what makes nested
    /// `par_iter`/`scope` calls on a 1-thread pool deadlock-free); any
    /// other thread parks on the condvar and lets the workers do the work.
    fn wait(&self) {
        if let Some(idx) = self.registry.on_worker() {
            loop {
                if *self.pending.lock().unwrap() == 0 {
                    return;
                }
                if let Some(task) = self.registry.find_task(Some(idx)) {
                    let _ = catch_unwind(AssertUnwindSafe(task));
                } else {
                    let guard = self.pending.lock().unwrap();
                    if *guard == 0 {
                        return;
                    }
                    // The missing tasks are mid-flight on other workers;
                    // wake when the last one checks in.
                    let _ = self
                        .done
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        } else {
            let mut guard = self.pending.lock().unwrap();
            while *guard > 0 {
                guard = self.done.wait(guard).unwrap();
            }
        }
    }
}

/// A spawn scope: tasks may borrow anything that outlives `'scope`, and
/// [`scope`] does not return before every task has finished.
pub struct Scope<'scope> {
    inner: Arc<ScopeInner>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queue `f` onto the pool. It may itself spawn further tasks on the
    /// same scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        *self.inner.pending.lock().unwrap() += 1;
        let inner = Arc::clone(&self.inner);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                inner: Arc::clone(&inner),
                _marker: PhantomData,
            };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                scope.inner.panic.lock().unwrap().get_or_insert(p);
            }
            inner.task_finished();
        });
        // SAFETY: `scope()` blocks until `pending` reaches zero before
        // returning (or unwinding), so every `'scope` borrow captured by
        // `f` strictly outlives the task.
        let task = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.inner.registry.inject(task);
    }
}

/// Run `op` with a [`Scope`] on the current pool (the global pool when the
/// caller is not a pool worker). Returns after every spawned task has
/// finished; the first panic from `op` or any task is propagated.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        inner: Arc::new(ScopeInner {
            registry: current_registry(),
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _marker: PhantomData,
    };
    // Even if `op` itself panics, wait for already-spawned tasks first —
    // they borrow data from the caller's frame.
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.inner.wait();
    if let Some(p) = scope.inner.panic.lock().unwrap().take() {
        resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => resume_unwind(p),
    }
}

/// Run `a` on the calling thread while `b` is available for any pool
/// worker to pick up; returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    let ra = scope(|s| {
        s.spawn(|_| {
            *rb.lock().unwrap() = Some(b());
        });
        a()
    });
    let rb = rb.into_inner().unwrap().expect("join arm did not run");
    (ra, rb)
}
