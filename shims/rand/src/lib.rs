//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`Rng::gen_range`, `SeedableRng::seed_from_u64`, `rngs::SmallRng`).
//!
//! The build environment has no registry access, so the workspace renames
//! this crate to `rand` via `[workspace.dependencies]`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed
//! on every platform, which the survey runner relies on for byte-identical
//! reruns. It makes no uniformity guarantees beyond what a simulation
//! needs; it is not a cryptographic or statistically rigorous RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling interface (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Like real rand, the output type `T` is an independent parameter so
    /// integer-literal ranges infer their type from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from an integer seed (the `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map 64 random bits to a float in `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 — used to expand seeds into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // A pathological all-zero state cannot occur: splitmix64 is a
            // bijection, so four consecutive outputs are never all zero.
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can be sampled into a `T` (the `rand` `SampleRange` role).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Per-type uniform sampling (the `rand` `SampleUniform` role).
///
/// `SampleRange` is implemented once, generically, over this trait —
/// exactly like real rand. That single blanket impl is what lets type
/// inference flow *through* `gen_range`: in `u64_val * rng.gen_range(1..997)`
/// the `Mul` obligation fixes `T = u64`, and the blanket
/// `Range<T>: SampleRange<T>` impl then forces the integer literals to
/// `u64`. Separate per-type `SampleRange` impls would leave the literals
/// free to default to `i32` and break such call sites.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000))
            .count();
        assert!(same < 16, "streams look identical: {same}/64 collisions");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = r.gen_range(10u8..=12);
            assert!((10..=12).contains(&u));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut r = SmallRng::seed_from_u64(4);
        let vals: Vec<f64> = (0..1000).map(|_| r.gen_range(0.0f64..1.0)).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.1 && hi > 0.9, "poor coverage: [{lo}, {hi}]");
    }
}
