//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no registry access, so the workspace renames
//! this crate to `serde` via `[workspace.dependencies]`. Instead of serde's
//! visitor architecture, serialization goes through an owned JSON-like
//! [`Value`] tree: `Serialize` renders a type into a `Value`,
//! `Deserialize` rebuilds the type from one. The companion `serde_json`
//! stand-in prints and parses that tree. The derive macros
//! (`hsw-serde-derive`) generate externally-tagged representations
//! compatible with real serde's defaults for the shapes used here.

// The derive macros emit `::serde::...` paths (dependents rename this
// crate to `serde`); alias ourselves so they also resolve in this crate's
// own tests.
extern crate self as serde;

pub use hsw_serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree.
///
/// Object fields are an ordered `Vec` (not a map): field order is exactly
/// insertion order, which keeps serialized output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build the externally-tagged enum-variant representation
    /// `{"Variant": inner}`.
    pub fn variant(tag: &str, inner: Value) -> Value {
        Value::Object(vec![(tag.to_string(), inner)])
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret a single-field object as an externally-tagged enum variant.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }

    /// Numeric coercion: any numeric `Value` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric coercion: any integral `Value` as `i128`.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::Int(v) => Some(v as i128),
            Value::UInt(v) => Some(v as i128),
            // Parsers may hand back integral floats (e.g. "1e3").
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i128),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, for which type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Look up a required field of an object (derive-macro helper).
pub fn object_field<'v>(
    obj: &'v [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` while deserializing {ty}")))
}

/// Render into a [`Value`] tree (the shim's `serde::Serialize` role).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild from a [`Value`] tree (the shim's `serde::Deserialize` role).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i128().ok_or_else(|| {
                    DeError::expected("integer", stringify!($t))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64
);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Several hwspec types hold `&'static str` names and derive
/// `Deserialize`. Real serde borrows from the input document; this shim's
/// [`Value`] tree is owned, so the string is leaked instead. These types
/// are deserialized rarely (test round-trips, registry artifacts), and the
/// leaked names are small interned-style constants, so this is acceptable.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| DeError::expected("string", "&str"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "[T; N]"))?;
        if items.len() != N {
            return Err(DeError::expected("array of exact length", "[T; N]"));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::expected("array of exact length", "[T; N]"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple"))?;
                if arr.len() != $len {
                    return Err(DeError::expected("tuple-sized array", "tuple"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        a: u32,
        b: Vec<(f64, f64)>,
        c: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u8);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Plain,
        One(Newtype),
        Pair(u32, u32),
        Rec { x: f64 },
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
        let back = T::from_value(&v.to_value()).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn derived_struct_roundtrips() {
        roundtrip(&Named {
            a: 7,
            b: vec![(0.5, 1.0), (1.0, 1.0)],
            c: "hi".to_string(),
        });
    }

    #[test]
    fn derived_newtype_is_transparent() {
        assert_eq!(Newtype(25).to_value(), Value::UInt(25));
        roundtrip(&Newtype(25));
    }

    #[test]
    fn derived_enum_matches_external_tagging() {
        assert_eq!(Mixed::Plain.to_value(), Value::Str("Plain".to_string()));
        assert_eq!(
            Mixed::One(Newtype(3)).to_value(),
            Value::variant("One", Value::UInt(3))
        );
        for v in [
            Mixed::Plain,
            Mixed::One(Newtype(1)),
            Mixed::Pair(4, 5),
            Mixed::Rec { x: 0.25 },
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn option_null_roundtrip() {
        roundtrip(&Some(3u32));
        roundtrip(&None::<u32>);
    }
}
