//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: `Criterion::default()` with the builder knobs, `bench_function`
//! with `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Methodology (simplified from criterion): warm up for `warm_up_time`,
//! then run `sample_size` samples, each timing a batch sized so one batch
//! lasts roughly `measurement_time / sample_size`, and report
//! min/mean/max per-iteration time. No statistics beyond that, no
//! baseline persistence, no plots — just honest wall-clock numbers on
//! stdout, which is what the survey's perf-trajectory points need.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also yields a per-iteration estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_iter_ns).round() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// `iter` with a per-iteration setup whose cost is excluded from the
    /// timing (real criterion times setup+routine per element and
    /// subtracts; here the setup simply runs outside the timed section).
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut est_iter_ns = 1.0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            est_iter_ns += t.elapsed().as_nanos() as f64;
            warm_iters += 1;
        }
        est_iter_ns = (est_iter_ns / warm_iters.max(1) as f64).max(1.0);

        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_iter_ns).round() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut elapsed_ns = 0u128;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                elapsed_ns += start.elapsed().as_nanos();
            }
            self.samples_ns.push(elapsed_ns as f64 / batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples — Bencher::iter never called)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 3, "routine should run many times, ran {calls}");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.00 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
    }
}
