//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, and [`Value`].
//!
//! Works on the shim serde's owned [`Value`] tree. Output is fully
//! deterministic: object fields print in insertion order and floats use
//! Rust's shortest-roundtrip formatting, so identical values always render
//! to identical bytes — the survey runner's byte-identical-rerun guarantee
//! builds on this.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type covering both rendering and parsing failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, d| write_value(out, item, indent, d),
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), d| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Shortest-roundtrip formatting; force a `.0` on integral values so
        // the token re-parses as a float, matching serde_json.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: `bytes` came from a `&str`, and `pos` only
                    // ever advances by whole escape sequences (ASCII) or
                    // `len_utf8()` of a decoded char, so it is always on a
                    // UTF-8 boundary and `rest` is valid UTF-8.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x\"y".to_string())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[0.5,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn floats_reparse_as_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#" { "xs": [1, -2, 3.25e1], "flag": true, "s": "é\n" } "#;
        let v = parse_value(src).unwrap();
        let printed = to_string(&v).unwrap();
        let v2 = parse_value(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("k".to_string(), Value::Array(vec![Value::UInt(1)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn typed_roundtrip_through_text() {
        let xs: Vec<(f64, f64)> = vec![(0.4, 1.0), (1.0, 0.97)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1,").is_err());
    }
}
