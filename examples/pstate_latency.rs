//! Figures 3 and 4 end to end: the modified FTaLaT measuring p-state
//! transition latencies under the four delay regimes, plus the measured
//! opportunity timeline.
//!
//! Run with: `cargo run --release --example pstate_latency`

use haswell_survey_repro::survey::{experiments, Fidelity};

fn main() {
    let fig3 = experiments::fig3::run(Fidelity::Quick);
    println!("{fig3}");
    println!(
        "(paper: random requests spread evenly 21–524 µs; instant re-requests\n\
         cluster at ~500 µs; 400 µs delay yields ~100 µs; ~500 µs delay is bimodal.\n\
         The ACPI tables claim 10 µs — inapplicable.)\n"
    );

    let fig4 = experiments::fig4::run();
    println!("{fig4}");
    println!(
        "(all cores of one socket latch at the same opportunity; the two\n\
         sockets run independent ~500 µs clocks)"
    );
}
