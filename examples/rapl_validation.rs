//! Figure 2 end to end: validate RAPL against the AC reference meter on
//! both the Sandy Bridge-EP (modeled RAPL) and Haswell-EP (measured RAPL)
//! nodes, print the scatter, the fits, and the per-workload bias.
//!
//! Run with: `cargo run --release --example rapl_validation`

use haswell_survey_repro::survey::{experiments, Fidelity};

fn main() {
    let fig2 = experiments::fig2::run(Fidelity::Quick);
    println!("{fig2}");

    let q = fig2.haswell.quadratic.expect("haswell fit");
    println!(
        "Haswell-EP re-discovered fit:   AC = {:.4}*P^2 + {:.3}*P + {:.1}",
        q.coeffs[2], q.coeffs[1], q.coeffs[0]
    );
    println!("paper footnote 2:               AC = 0.0003*P^2 + 1.097*P + 225.7");
    println!("R^2 = {:.5} (paper: > 0.9998)", q.r_squared);
    println!("max residual = {:.2} W (paper: below 3 W)", q.max_residual);
    println!(
        "\nworkload bias spread: SNB {:.1} W vs HSW {:.1} W — the Fig. 2a/2b contrast",
        fig2.sandy_bridge.bias_spread_w(),
        fig2.haswell.bias_spread_w()
    );
}
