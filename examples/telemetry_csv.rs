//! Record a ground-truth telemetry trace of a load ramp — idle → one
//! spinning core → full FIRESTARTER — and dump it as CSV (for replotting
//! the paper's time-series style figures with any plotting tool).
//!
//! Run with: `cargo run --release --example telemetry_csv > trace.csv`

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::node::{Node, NodeConfig, Trace};

fn main() {
    let mut node = Node::new(NodeConfig::paper_default());
    node.set_setting_all(FreqSetting::Turbo);

    // Phase 1: idle.
    node.idle_all();
    let mut trace = Trace::record(&mut node, 1.0, 0.05);

    // Phase 2: one spinning core (the Table III scenario).
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
    trace
        .snapshots
        .extend(Trace::record(&mut node, 1.0, 0.05).snapshots);

    // Phase 3: FIRESTARTER everywhere (the Table IV scenario).
    let fs = WorkloadProfile::firestarter();
    for s in 0..2 {
        node.run_on_socket(s, &fs, 12, 2);
    }
    trace
        .snapshots
        .extend(Trace::record(&mut node, 2.0, 0.05).snapshots);

    print!("{}", trace.to_csv());

    let (_, mean_ac, max_ac) = trace.stats(|s| s.ac_w);
    eprintln!("# snapshots: {}", trace.snapshots.len());
    eprintln!("# mean AC {mean_ac:.1} W, max AC {max_ac:.1} W");
    eprintln!("# (idle ≈ 261.5 W and FIRESTARTER ≈ 560 W per the paper)");
}
