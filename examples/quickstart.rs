//! Quickstart: build the paper's test node, run FIRESTARTER, watch the
//! TDP balancer settle at the Table IV operating point, and print one
//! full experiment.
//!
//! Run with: `cargo run --release --example quickstart`

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::node::{CpuId, Node, NodeConfig};
use haswell_survey_repro::survey::{experiments, Fidelity};
use haswell_survey_repro::tools::perfctr::{median_of, PerfCtr};

fn main() {
    // 1. The paper's test system: 2× Xeon E5-2680 v3 (Table II).
    let mut node = Node::new(NodeConfig::paper_default());
    println!("node: {}", node.config().spec.name);

    // 2. Idle first — Table II's 261.5 W.
    node.idle_all();
    node.advance_s(0.3);
    let idle = node.measure_ac_average(2.0);
    println!("idle AC power: {idle:.1} W (paper: 261.5 W)\n");

    // 3. FIRESTARTER on every hardware thread at the Turbo setting.
    let fs = WorkloadProfile::firestarter();
    for socket in 0..2 {
        node.run_on_socket(socket, &fs, 12, 2);
    }
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(1.0);

    // 4. Observe the hardware through the same counters LIKWID reads.
    for socket in 0..2 {
        let pc = PerfCtr::new(&node, CpuId::new(socket, 0, 0));
        let samples = pc.monitor(&mut node, 10, 0.2);
        println!(
            "socket {socket}: core {:.2} GHz, uncore {:.2} GHz, {:.2} GIPS, pkg {:.1} W",
            median_of(&samples, |d| d.core_ghz),
            median_of(&samples, |d| d.uncore_ghz),
            median_of(&samples, |d| d.gips),
            median_of(&samples, |d| d.pkg_w),
        );
    }
    println!(
        "\n(paper Table IV, Turbo column: core 2.30/2.32 GHz, uncore 2.33/2.35 GHz,\n\
         3.55/3.58 GIPS, both sockets TDP-limited at 120 W)\n"
    );

    // 5. One full experiment: Table III.
    let t3 = experiments::table3::run(Fidelity::Quick);
    println!("{t3}");
}
