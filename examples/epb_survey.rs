//! Section II-C end to end: survey all 16 raw EPB register values and
//! recover the paper's measured mapping (0 = performance, 1–7 = balanced,
//! 8–15 = energy saving), plus the Figure 1 die-topology report.
//!
//! Run with: `cargo run --release --example epb_survey`

use haswell_survey_repro::survey::experiments;

fn main() {
    let epb = experiments::section2c_epb::run();
    println!("{epb}");
    println!(
        "(paper Section II-C: only 0, 6 and 15 are architecturally defined;\n\
         the measured mapping groups 1-7 with balanced and 8-14 with energy\n\
         saving. EPB=performance also pins the uncore at 3.0 GHz — the (*)\n\
         entries of Table III.)\n"
    );

    let fig1 = experiments::fig1::run();
    println!("{fig1}");
    println!(
        "(paper Figure 1: the 12-core die is an 8-core + 4-core ring pair,\n\
         the 18-core die an 8-core + 10-core pair, each partition with its\n\
         own 2-channel IMC, joined by buffered queues)"
    );
}
