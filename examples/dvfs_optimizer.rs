//! The survey applied: use the simulated node as the evaluation function of
//! a DVFS/DCT optimizer — the "energy efficiency optimization strategies"
//! the paper's abstract motivates — and sweep the whole E5-2600 v3 product
//! line through the Figure 1 die selection.
//!
//! Run with: `cargo run --release --example dvfs_optimizer`

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::e5_2600_v3_line;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::survey::energy::{dct_sweep, dvfs_sweep};

fn main() {
    println!("== DVFS sweep: energy-optimal frequency per workload class ==\n");
    for profile in [
        WorkloadProfile::memory_bound(),
        WorkloadProfile::compute(),
        WorkloadProfile::dgemm(),
    ] {
        let sweep = dvfs_sweep(&profile, 12);
        let e = sweep.energy_optimal();
        let d = sweep.edp_optimal();
        let label = |m: Option<u32>| {
            m.map(|m| format!("{:.1} GHz", m as f64 / 1000.0))
                .unwrap_or_else(|| "Turbo".into())
        };
        println!(
            "{:<10} energy-optimal {:<8} ({:.2} J/unit)   EDP-optimal {}",
            profile.name,
            label(e.setting_mhz),
            e.energy_per_work(),
            label(d.setting_mhz),
        );
    }
    println!(
        "\n(paper Conclusions: Haswell-EP's frequency-independent DRAM bandwidth\n\
         makes downclocking memory-bound codes \"viable again\"; compute-bound\n\
         codes want higher clocks.)\n"
    );

    println!("== DCT sweep: memory-bound streamer at 2.5 GHz ==\n");
    let sweep = dct_sweep(
        &WorkloadProfile::memory_bound(),
        FreqSetting::from_mhz(2500),
    );
    for p in &sweep.points {
        println!(
            "  {:>2} cores: {:>5.1} GB/s at {:>5.1} W -> {:>5.2} J/GB",
            p.cores,
            p.throughput,
            p.power_w,
            p.energy_per_work()
        );
    }
    let opt = sweep.energy_optimal();
    println!(
        "\nenergy-optimal concurrency: {} cores (bandwidth saturates at 8 — Fig. 8)\n",
        opt.cores
    );

    println!("== The E5-2600 v3 line and its dies (Fig. 1 selection) ==\n");
    for sku in e5_2600_v3_line() {
        println!(
            "  {:<26} {:>2} cores on the {:<18} base {:.1} GHz, TDP {:>3.0} W",
            sku.model,
            sku.cores,
            sku.die.name,
            sku.freq.base_mhz as f64 / 1000.0,
            sku.tdp_w
        );
    }
}
