//! Table V end to end: FIRESTARTER vs. LINPACK vs. mprime maximum power
//! and measured frequencies across settings and EPB values.
//!
//! Run with: `cargo run --release --example max_power`

use haswell_survey_repro::survey::{experiments, Fidelity};

fn main() {
    let t5 = experiments::table5::run(Fidelity::Quick);
    println!("{t5}");
    println!(
        "(paper Table V at 2500/bal: FIRESTARTER 560.4 W @ 2.45 GHz,\n\
         LINPACK 547.9 W @ 2.28 GHz, mprime 558.6 W @ 2.49 GHz; EPB and turbo\n\
         settings have very little impact on power. LINPACK runs at the lowest\n\
         frequency — TDP-restricted; mprime exceeds nominal under turbo.)"
    );
}
