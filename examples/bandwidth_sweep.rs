//! Figures 7 and 8 end to end: L3 and DRAM read bandwidth across
//! frequency, concurrency and processor generations.
//!
//! Run with: `cargo run --release --example bandwidth_sweep`

use haswell_survey_repro::survey::experiments;

fn main() {
    let fig7 = experiments::fig7::run();
    println!("{fig7}");
    println!(
        "(paper Fig. 7: Haswell-EP and Westmere-EP DRAM bandwidth is flat in\n\
         core frequency; Sandy Bridge-EP's is coupled. Haswell-EP's L3 follows\n\
         the core clock and flattens at high frequency.)\n"
    );

    let fig8 = experiments::fig8::run();
    println!("{fig8}");
    println!(
        "(paper Fig. 8: DRAM saturates at 8 cores and is frequency-independent\n\
         from 10 cores; L3 scales with cores and frequency; extra threads per\n\
         core only help at low concurrency.)"
    );
}
