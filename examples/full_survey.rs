//! Run the complete survey — every table and every figure — and print the
//! paper-style reports. With `--paper` the experiments use the paper's
//! methodology durations (slower; use `--release`). With `--write-md FILE`
//! a markdown summary (the basis of EXPERIMENTS.md) is written.
//!
//! Run with: `cargo run --release --example full_survey [-- --paper]`

use std::fmt::Write as _;

use haswell_survey_repro::survey::{experiments, Fidelity};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fidelity = if args.iter().any(|a| a == "--paper") {
        Fidelity::Paper
    } else {
        Fidelity::Quick
    };
    let write_md = args
        .iter()
        .position(|a| a == "--write-md")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut md = String::new();
    let mut emit = |title: &str, body: String| {
        println!("================================================================");
        println!("{title}");
        println!("================================================================");
        println!("{body}");
        let _ = writeln!(md, "## {title}\n\n```text\n{body}\n```\n");
    };

    emit(
        "Table I — microarchitecture comparison",
        experiments::table1::run().to_string(),
    );
    emit(
        "Table II — test system",
        experiments::table2::run(fidelity).to_string(),
    );
    emit(
        "Table III — uncore frequencies",
        experiments::table3::run(fidelity).to_string(),
    );
    emit(
        "Table IV — FIRESTARTER vs frequency settings",
        experiments::table4::run(fidelity).to_string(),
    );
    emit(
        "Table V — maximum power",
        experiments::table5::run(fidelity).to_string(),
    );
    emit(
        "Figure 2 — RAPL vs AC reference",
        experiments::fig2::run(fidelity).to_string(),
    );
    emit(
        "Figure 3 — p-state transition latencies",
        experiments::fig3::run(fidelity).to_string(),
    );
    emit(
        "Figure 4 — opportunity timeline",
        experiments::fig4::run().to_string(),
    );
    emit(
        "Figures 5/6 — c-state wake latencies",
        experiments::fig56::run(fidelity).to_string(),
    );
    emit(
        "Figure 7 — bandwidth vs frequency",
        experiments::fig7::run().to_string(),
    );
    emit(
        "Figure 8 — bandwidth heatmaps",
        experiments::fig8::run().to_string(),
    );
    emit(
        "Section VIII — FIRESTARTER",
        experiments::section8::run().to_string(),
    );
    emit(
        "Figure 1 — die topology",
        experiments::fig1::run().to_string(),
    );
    emit(
        "Section II-C — measured EPB mapping",
        experiments::section2c_epb::run().to_string(),
    );
    emit(
        "Section VI-B — governor vs ACPI tables",
        experiments::section6b_governor::run().to_string(),
    );
    emit(
        "Extension — product-line extrapolation",
        experiments::sku_extrapolation::run().to_string(),
    );
    emit(
        "Fleet — power caps turn variation into performance spread",
        experiments::fleet_cap_spread::run(fidelity).to_string(),
    );
    emit(
        "Fleet — barrier collectives pay for the slowest chip",
        experiments::fleet_straggler::run(fidelity).to_string(),
    );
    emit(
        "Skylake-SP — AVX frequency licenses (arXiv:1905.12468)",
        experiments::skx_license_table::run().to_string(),
    );
    emit(
        "Skylake-SP — mesh frequency scaling (arXiv:1905.12468)",
        experiments::skx_ufs_mesh::run(fidelity).to_string(),
    );
    emit(
        "Analytic — surrogate accuracy vs the full simulator (arXiv:1803.01618)",
        experiments::analytic_accuracy::run(fidelity).to_string(),
    );
    emit(
        "Analytic — million-node cap-spread sweep with simulator spot checks",
        experiments::fleet_analytic_scale::run(fidelity).to_string(),
    );

    if let Some(path) = write_md {
        std::fs::write(&path, md).expect("write markdown");
        println!("wrote {path}");
    }
}
